#include "core/ddc_rq_cascade.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "data/ground_truth.h"
#include "data/metrics.h"
#include "index/flat_index.h"
#include "index/hnsw_index.h"
#include "simd/kernels.h"
#include "test_util.h"

namespace resinfer::core {
namespace {

struct CascadeFixture {
  data::Dataset ds = testing::SmallDataset(3000, 32, 0.9, 83, 48, 400);
  DdcRqCascadeArtifacts artifacts;

  CascadeFixture() {
    DdcRqCascadeOptions options;
    options.rq.nbits = 6;
    options.levels = {2, 4, 8};
    options.training.max_queries = 150;
    artifacts = TrainDdcRqCascade(ds.base, ds.train_queries, options);
  }
};

CascadeFixture& Fixture() {
  static CascadeFixture* fixture = new CascadeFixture();
  return *fixture;
}

TEST(DdcRqCascadeTest, ArtifactShapes) {
  CascadeFixture& f = Fixture();
  const auto n = static_cast<std::size_t>(f.ds.size());
  EXPECT_EQ(f.artifacts.rq.num_stages(), 8);
  EXPECT_EQ(f.artifacts.levels.size(), 3u);
  EXPECT_EQ(f.artifacts.correctors.size(), 3u);
  EXPECT_EQ(f.artifacts.codes.size(), n * 8);
  EXPECT_EQ(f.artifacts.level_norms.size(), n * 3);
  EXPECT_EQ(f.artifacts.level_errors.size(), n * 3);
  EXPECT_GT(f.artifacts.ExtraBytes(), 0);
  EXPECT_GT(f.artifacts.train_seconds, 0.0);
}

TEST(DdcRqCascadeTest, LevelErrorsAreNonIncreasing) {
  // Each extra stage refines the reconstruction, so per-point level errors
  // must not grow with the level.
  CascadeFixture& f = Fixture();
  for (int64_t i = 0; i < f.ds.size(); i += 37) {
    for (int l = 1; l < 3; ++l) {
      EXPECT_LE(f.artifacts.level_errors[static_cast<std::size_t>(i * 3 + l)],
                f.artifacts
                        .level_errors[static_cast<std::size_t>(i * 3 + l - 1)] *
                        1.0001f +
                    1e-5f)
          << "point " << i << " level " << l;
    }
  }
}

TEST(DdcRqCascadeTest, TruncatedAdcMatchesPartialReconstruction) {
  CascadeFixture& f = Fixture();
  DdcRqCascadeComputer computer(&f.ds.base, &f.artifacts);
  const float* query = f.ds.queries.Row(0);
  computer.BeginQuery(query);

  const quant::RqCodebook& rq = f.artifacts.rq;
  for (int64_t i = 0; i < 20; ++i) {
    const uint8_t* code = f.artifacts.codes.data() + i * rq.code_size();
    std::vector<float> partial(32, 0.0f);
    int stage = 0;
    for (int l = 0; l < 3; ++l) {
      for (; stage < f.artifacts.levels[static_cast<std::size_t>(l)];
           ++stage) {
        const float* c = rq.centroids(stage).Row(code[stage]);
        for (int64_t j = 0; j < 32; ++j) {
          partial[static_cast<std::size_t>(j)] += c[j];
        }
      }
      const float direct = simd::L2Sqr(query, partial.data(), 32);
      EXPECT_NEAR(computer.ApproximateDistance(i, l), direct,
                  1e-2f * (1.0f + direct))
          << "point " << i << " level " << l;
    }
  }
}

TEST(DdcRqCascadeTest, ApproximationSharpensWithLevel) {
  // Averaged over pairs, the truncated ADC at deeper levels must track the
  // exact distance better.
  CascadeFixture& f = Fixture();
  DdcRqCascadeComputer computer(&f.ds.base, &f.artifacts);
  double error_by_level[3] = {0.0, 0.0, 0.0};
  int count = 0;
  for (int64_t q = 0; q < 10; ++q) {
    const float* query = f.ds.queries.Row(q);
    computer.BeginQuery(query);
    for (int64_t i = 0; i < f.ds.size(); i += 53) {
      const float exact = simd::L2Sqr(query, f.ds.base.Row(i), 32);
      for (int l = 0; l < 3; ++l) {
        error_by_level[l] +=
            std::abs(computer.ApproximateDistance(i, l) - exact);
      }
      ++count;
    }
  }
  EXPECT_LT(error_by_level[1], error_by_level[0]);
  EXPECT_LT(error_by_level[2], error_by_level[1]);
}

TEST(DdcRqCascadeTest, FlatScanRecallAndPruning) {
  CascadeFixture& f = Fixture();
  DdcRqCascadeComputer computer(&f.ds.base, &f.artifacts);
  index::FlatIndex flat(f.ds.base);
  const int k = 10;
  std::vector<std::vector<int64_t>> truth =
      data::BruteForceKnn(f.ds.base, f.ds.queries, k);
  std::vector<std::vector<int64_t>> results;
  for (int64_t q = 0; q < f.ds.queries.rows(); ++q) {
    std::vector<index::Neighbor> found =
        flat.Search(computer, f.ds.queries.Row(q), k);
    std::vector<int64_t> ids;
    for (const auto& nb : found) ids.push_back(nb.id);
    results.push_back(std::move(ids));
  }
  EXPECT_GE(data::MeanRecallAtK(results, truth, k), 0.9);
  EXPECT_GT(computer.stats().PrunedRate(), 0.3);
}

TEST(DdcRqCascadeTest, EarlyLevelsPruneMostCandidates) {
  // The cascade's point: most pruned candidates should cost 2 lookups, not
  // 8. Average lookups per pruned candidate must sit well below the
  // all-stages cost.
  CascadeFixture& f = Fixture();
  DdcRqCascadeComputer computer(&f.ds.base, &f.artifacts);
  index::FlatIndex flat(f.ds.base);
  for (int64_t q = 0; q < 16; ++q) {
    flat.Search(computer, f.ds.queries.Row(q), 10);
  }
  const auto& stats = computer.stats();
  ASSERT_GT(stats.pruned, 0);
  const double lookups_per_candidate =
      static_cast<double>(computer.stage_lookups()) /
      static_cast<double>(stats.candidates);
  EXPECT_LT(lookups_per_candidate, 7.0);
}

TEST(DdcRqCascadeTest, WorksInsideHnsw) {
  CascadeFixture& f = Fixture();
  index::HnswOptions options;
  options.ef_construction = 80;
  index::HnswIndex hnsw = index::HnswIndex::Build(f.ds.base, options);
  DdcRqCascadeComputer computer(&f.ds.base, &f.artifacts);
  const int k = 10;
  std::vector<std::vector<int64_t>> truth =
      data::BruteForceKnn(f.ds.base, f.ds.queries, k);
  std::vector<std::vector<int64_t>> results;
  for (int64_t q = 0; q < f.ds.queries.rows(); ++q) {
    std::vector<index::Neighbor> found =
        hnsw.Search(computer, f.ds.queries.Row(q), k, /*ef=*/120);
    std::vector<int64_t> ids;
    for (const auto& nb : found) ids.push_back(nb.id);
    results.push_back(std::move(ids));
  }
  EXPECT_GE(data::MeanRecallAtK(results, truth, k), 0.85);
}

TEST(DdcRqCascadeTest, InfiniteTauSkipsCascade) {
  CascadeFixture& f = Fixture();
  DdcRqCascadeComputer computer(&f.ds.base, &f.artifacts);
  computer.BeginQuery(f.ds.queries.Row(2));
  index::EstimateResult r =
      computer.EstimateWithThreshold(7, index::kInfDistance);
  EXPECT_FALSE(r.pruned);
  EXPECT_FLOAT_EQ(r.distance,
                  simd::L2Sqr(f.ds.queries.Row(2), f.ds.base.Row(7), 32));
}

TEST(DdcRqCascadeTest, SingleLevelDegeneratesToSingleShot) {
  // A one-level cascade is just DdcAny(RQ) with a different wrapper; it
  // must train and search without issue.
  data::Dataset ds = testing::SmallDataset(1200, 16, 0.8, 85, 16, 200);
  DdcRqCascadeOptions options;
  options.rq.nbits = 5;
  options.levels = {4};
  options.training.max_queries = 80;
  DdcRqCascadeArtifacts artifacts =
      TrainDdcRqCascade(ds.base, ds.train_queries, options);
  EXPECT_EQ(artifacts.correctors.size(), 1u);

  DdcRqCascadeComputer computer(&ds.base, &artifacts);
  index::FlatIndex flat(ds.base);
  std::vector<std::vector<int64_t>> truth =
      data::BruteForceKnn(ds.base, ds.queries, 5);
  double recall_sum = 0.0;
  for (int64_t q = 0; q < ds.queries.rows(); ++q) {
    std::vector<index::Neighbor> found =
        flat.Search(computer, ds.queries.Row(q), 5);
    std::vector<int64_t> ids;
    for (const auto& nb : found) ids.push_back(nb.id);
    recall_sum += data::RecallAtK(ids, truth[static_cast<std::size_t>(q)], 5);
  }
  EXPECT_GE(recall_sum / static_cast<double>(ds.queries.rows()), 0.9);
}

}  // namespace
}  // namespace resinfer::core

#include "core/error_model.h"

#include <cmath>

#include <gtest/gtest.h>

#include "linalg/pca.h"
#include "test_util.h"
#include "util/rng.h"

namespace resinfer::core {
namespace {

TEST(InverseNormalCdfTest, KnownQuantiles) {
  EXPECT_NEAR(InverseNormalCdf(0.5), 0.0, 1e-8);
  EXPECT_NEAR(InverseNormalCdf(0.8413447), 1.0, 1e-4);
  EXPECT_NEAR(InverseNormalCdf(0.9772499), 2.0, 1e-4);
  EXPECT_NEAR(InverseNormalCdf(0.9986501), 3.0, 1e-4);
  EXPECT_NEAR(InverseNormalCdf(0.9750), 1.959964, 1e-4);
  // Symmetry.
  EXPECT_NEAR(InverseNormalCdf(0.1), -InverseNormalCdf(0.9), 1e-8);
}

TEST(InverseNormalCdfTest, TailValues) {
  EXPECT_NEAR(InverseNormalCdf(1e-6), -4.753424, 1e-3);
  EXPECT_NEAR(InverseNormalCdf(1.0 - 1e-6), 4.753424, 1e-3);
}

TEST(InverseNormalCdfTest, MonotoneIncreasing) {
  double prev = -1e9;
  for (double p = 0.01; p < 1.0; p += 0.01) {
    double x = InverseNormalCdf(p);
    EXPECT_GT(x, prev);
    prev = x;
  }
}

TEST(GaussianQuantileMultiplierTest, PaperConventions) {
  // The paper's "3-sigma = 99.7%" empirical rule is two-sided; the
  // one-sided multiplier for 0.997 is ~2.75 and for 0.9987 is ~3.0.
  EXPECT_NEAR(GaussianQuantileMultiplier(0.997), 2.7478, 1e-3);
  EXPECT_NEAR(GaussianQuantileMultiplier(0.99865), 3.0, 2e-2);
}

TEST(ResidualErrorModelTest, SigmaMatchesDirectSum) {
  std::vector<float> variances = {4.0f, 3.0f, 2.0f, 1.0f};
  ResidualErrorModel model(variances);
  const float q[4] = {1.0f, -2.0f, 0.5f, 3.0f};
  model.BeginQuery(q);

  for (int64_t d = 0; d <= 4; ++d) {
    double direct = 0.0;
    for (int64_t i = d; i < 4; ++i)
      direct += static_cast<double>(q[i]) * q[i] * variances[i];
    EXPECT_NEAR(model.Sigma(d), 2.0 * std::sqrt(direct), 1e-5);
  }
  EXPECT_EQ(model.Sigma(4), 0.0f);
}

TEST(ResidualErrorModelTest, SigmaDecreasesWithDimension) {
  data::Dataset ds = testing::SmallDataset(2000, 32, 1.0, 60);
  linalg::PcaModel pca =
      linalg::PcaModel::Fit(ds.base.data(), ds.size(), ds.dim());
  ResidualErrorModel model(pca.variances());
  std::vector<float> rq(ds.dim());
  pca.Transform(ds.queries.Row(0), rq.data());
  model.BeginQuery(rq.data());
  for (int64_t d = 1; d <= ds.dim(); ++d) {
    EXPECT_LE(model.Sigma(d), model.Sigma(d - 1) + 1e-6f);
  }
}

// Property test for the central claim of §IV-C: the estimation error
// eps = dis' - dis is (approximately) N(0, sigma^2), so |eps| <= m*sigma
// should hold at roughly the configured two-sided rate.
TEST(ResidualErrorModelTest, EmpiricalCoverageNearNominal) {
  data::Dataset ds = testing::SmallDataset(4000, 32, 1.0, 61, 8, 4);
  linalg::PcaModel pca =
      linalg::PcaModel::Fit(ds.base.data(), ds.size(), ds.dim());
  linalg::Matrix rotated = pca.TransformBatch(ds.base.data(), ds.size());
  ResidualErrorModel model(pca.variances());

  const int64_t proj_dim = 8;
  const float m = 3.0f;  // two-sided ~99.7%
  int64_t covered = 0, total = 0;
  std::vector<float> rq(ds.dim());
  for (int64_t q = 0; q < ds.queries.rows(); ++q) {
    pca.Transform(ds.queries.Row(q), rq.data());
    model.BeginQuery(rq.data());
    const float sigma = model.Sigma(proj_dim);
    for (int64_t i = 0; i < ds.size(); i += 7) {
      // eps = C3 = 2 <x_r, q_r>.
      double eps = 0.0;
      const float* x = rotated.Row(i);
      for (int64_t j = proj_dim; j < ds.dim(); ++j)
        eps += 2.0 * static_cast<double>(x[j]) * rq[j];
      ++total;
      if (std::abs(eps) <= m * sigma) ++covered;
    }
  }
  double coverage = static_cast<double>(covered) / total;
  // Gaussianity is approximate (mixture data); require >= 98% at 3 sigma.
  EXPECT_GT(coverage, 0.98);
}

}  // namespace
}  // namespace resinfer::core

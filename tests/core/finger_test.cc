#include "core/finger.h"

#include <gtest/gtest.h>

#include "data/ground_truth.h"
#include "data/metrics.h"
#include "test_util.h"

namespace resinfer::core {
namespace {

struct Fixture {
  data::Dataset ds;
  index::HnswIndex graph;
  FingerArtifacts artifacts;

  explicit Fixture(int64_t n = 2000, int64_t dim = 32)
      : ds(testing::SmallDataset(n, dim, 1.0, 90, 16, 40)) {
    index::HnswOptions hnsw;
    hnsw.M = 8;
    hnsw.ef_construction = 60;
    graph = index::HnswIndex::Build(ds.base, hnsw);
    FingerOptions options;
    options.rank = 6;
    artifacts = BuildFingerArtifacts(ds.base, graph, ds.train_queries,
                                     options);
  }
};

TEST(FingerTest, ArtifactsCoverEveryNode) {
  Fixture f;
  EXPECT_EQ(static_cast<int64_t>(f.artifacts.edge_ids.size()), f.ds.size());
  EXPECT_GT(f.artifacts.ExtraBytes(), 0);
  EXPECT_GT(f.artifacts.bound_scale, 0.0f);
  // Edge metadata mirrors the graph adjacency.
  for (int64_t u = 0; u < f.ds.size(); u += 97) {
    int count = 0;
    const int64_t* links = f.graph.NeighborsAtBase(u, &count);
    ASSERT_EQ(static_cast<int>(f.artifacts.edge_ids[u].size()), count);
    for (int i = 0; i < count; ++i) {
      EXPECT_EQ(f.artifacts.edge_ids[u][i], links[i]);
    }
  }
}

TEST(FingerTest, EstimateAccuracyAtAnchors) {
  Fixture f;
  FingerComputer computer(&f.ds.base, &f.artifacts);
  // Manually anchor at a node and compare neighbor estimates to exact.
  const float* query = f.ds.queries.Row(0);
  computer.BeginQuery(query);
  int64_t anchor = 17;
  float anchor_dist = data::ExactL2Sqr(f.ds.base, anchor, query);
  computer.SetExpansionAnchor(anchor, anchor_dist);

  // The low-rank estimate + bound should rarely prune points inside tau.
  auto knn = data::BruteForceKnnSingle(f.ds.base, query, 10);
  const float tau = knn.back().distance;
  for (int64_t v : f.artifacts.edge_ids[anchor]) {
    auto est = computer.EstimateWithThreshold(v, tau);
    float truth = data::ExactL2Sqr(f.ds.base, v, query);
    if (est.pruned) {
      EXPECT_GT(truth, tau * 0.95f) << "pruned a near neighbor";
    } else {
      EXPECT_FLOAT_EQ(est.distance, truth);
    }
  }
}

TEST(FingerTest, NoAnchorFallsBackToExact) {
  Fixture f(500);
  FingerComputer computer(&f.ds.base, &f.artifacts);
  computer.BeginQuery(f.ds.queries.Row(1));
  auto est = computer.EstimateWithThreshold(3, 0.001f);
  EXPECT_FALSE(est.pruned);
  EXPECT_FLOAT_EQ(est.distance,
                  data::ExactL2Sqr(f.ds.base, 3, f.ds.queries.Row(1)));
}

TEST(FingerTest, HnswSearchRecallStaysHigh) {
  Fixture f;
  FingerComputer computer(&f.ds.base, &f.artifacts);
  auto truth = data::BruteForceKnn(f.ds.base, f.ds.queries, 10);
  std::vector<std::vector<int64_t>> results;
  index::HnswScratch scratch;
  for (int64_t q = 0; q < f.ds.queries.rows(); ++q) {
    auto found =
        f.graph.Search(computer, f.ds.queries.Row(q), 10, 96, &scratch);
    std::vector<int64_t> ids;
    for (const auto& nb : found) ids.push_back(nb.id);
    results.push_back(std::move(ids));
  }
  EXPECT_GT(data::MeanRecallAtK(results, truth, 10), 0.9);
}

TEST(FingerTest, SomePruningHappensDuringSearch) {
  Fixture f;
  FingerComputer computer(&f.ds.base, &f.artifacts);
  index::HnswScratch scratch;
  for (int64_t q = 0; q < f.ds.queries.rows(); ++q) {
    f.graph.Search(computer, f.ds.queries.Row(q), 10, 64, &scratch);
  }
  EXPECT_GT(computer.stats().pruned, 0);
}

}  // namespace
}  // namespace resinfer::core

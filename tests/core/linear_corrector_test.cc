#include "core/linear_corrector.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace resinfer::core {
namespace {

// Synthetic corrector problem mimicking the real one: exact = approx *
// (1 + noise); label = exact > tau. A linear boundary in (approx, tau)
// separates it well.
std::vector<CorrectorSample> MakeSamples(int n, double noise, uint64_t seed) {
  Rng rng(seed);
  std::vector<CorrectorSample> samples;
  samples.reserve(n);
  for (int i = 0; i < n; ++i) {
    float approx = static_cast<float>(rng.Uniform(0.5, 10.0));
    float tau = static_cast<float>(rng.Uniform(2.0, 8.0));
    float exact = approx * (1.0f + static_cast<float>(
                                       rng.Gaussian(0.0, noise)));
    CorrectorSample s;
    s.approx = approx;
    s.tau = tau;
    s.label = exact > tau ? 1 : 0;
    samples.push_back(s);
  }
  return samples;
}

TEST(LinearCorrectorTest, LearnsSeparableBoundary) {
  auto samples = MakeSamples(20000, 0.02, 5);
  LinearCorrectorOptions options;
  options.target_recall = 0.995;
  LinearCorrector model = LinearCorrector::Train(samples, options);
  ASSERT_TRUE(model.trained());
  auto metrics = model.Evaluate(samples);
  EXPECT_GE(metrics.label0_recall, 0.99);
  EXPECT_GT(metrics.label1_recall, 0.8);
  // The learned boundary should weight approx positively and tau
  // negatively (larger approx means prunable, larger tau means keep).
  EXPECT_GT(model.w_approx(), 0.0f);
  EXPECT_LT(model.w_tau(), 0.0f);
}

TEST(LinearCorrectorTest, CalibrationHitsTargetRecall) {
  auto samples = MakeSamples(20000, 0.15, 6);  // noisy: forces trade-off
  for (double target : {0.9, 0.99, 0.999}) {
    LinearCorrectorOptions options;
    options.target_recall = target;
    LinearCorrector model = LinearCorrector::Train(samples, options);
    auto metrics = model.Evaluate(samples);
    EXPECT_GE(metrics.label0_recall, target - 0.005)
        << "target " << target;
  }
}

TEST(LinearCorrectorTest, HigherTargetRecallPrunesLess) {
  auto samples = MakeSamples(20000, 0.15, 7);
  LinearCorrectorOptions lo_opts;
  lo_opts.target_recall = 0.9;
  LinearCorrectorOptions hi_opts;
  hi_opts.target_recall = 0.999;
  auto lo = LinearCorrector::Train(samples, lo_opts).Evaluate(samples);
  auto hi = LinearCorrector::Train(samples, hi_opts).Evaluate(samples);
  EXPECT_GE(hi.label0_recall, lo.label0_recall);
  EXPECT_LE(hi.label1_recall, lo.label1_recall + 1e-9);
}

TEST(LinearCorrectorTest, ThreeFeatureModel) {
  // extra feature = reliability of approx; higher extra -> noisier approx.
  Rng rng(8);
  std::vector<CorrectorSample> samples;
  for (int i = 0; i < 20000; ++i) {
    CorrectorSample s;
    s.approx = static_cast<float>(rng.Uniform(0.5, 10.0));
    s.tau = static_cast<float>(rng.Uniform(2.0, 8.0));
    s.extra = static_cast<float>(rng.Uniform(0.0, 1.0));
    float exact =
        s.approx *
        (1.0f + static_cast<float>(rng.Gaussian(0.0, 0.02 + 0.3 * s.extra)));
    s.label = exact > s.tau ? 1 : 0;
    samples.push_back(s);
  }
  LinearCorrectorOptions options;
  options.num_features = 3;
  LinearCorrector model = LinearCorrector::Train(samples, options);
  auto metrics = model.Evaluate(samples);
  EXPECT_GE(metrics.label0_recall, 0.99);
  EXPECT_GT(metrics.label1_recall, 0.3);
}

TEST(LinearCorrectorTest, UntrainedNeverPrunes) {
  LinearCorrector model;
  EXPECT_FALSE(model.PredictPrunable(100.0f, 0.1f));
  EXPECT_FALSE(model.trained());
}

TEST(LinearCorrectorTest, EmptySamplesNeverPrunes) {
  LinearCorrector model = LinearCorrector::Train({});
  EXPECT_FALSE(model.PredictPrunable(1e9f, 0.0f));
}

TEST(LinearCorrectorTest, SingleLabelDegenerateStaysConservative) {
  std::vector<CorrectorSample> all_zero(100);
  for (auto& s : all_zero) {
    s.approx = 1.0f;
    s.tau = 2.0f;
    s.label = 0;
  }
  LinearCorrector model = LinearCorrector::Train(all_zero);
  EXPECT_TRUE(model.trained());
  EXPECT_FALSE(model.PredictPrunable(5.0f, 2.0f));

  std::vector<CorrectorSample> all_one = all_zero;
  for (auto& s : all_one) s.label = 1;
  LinearCorrector model1 = LinearCorrector::Train(all_one);
  // Prune-always is never safe; the degenerate fallback keeps everything.
  EXPECT_FALSE(model1.PredictPrunable(0.1f, 2.0f));
}

TEST(LinearCorrectorTest, DeterministicInSeed) {
  auto samples = MakeSamples(5000, 0.05, 9);
  LinearCorrector a = LinearCorrector::Train(samples);
  LinearCorrector b = LinearCorrector::Train(samples);
  EXPECT_EQ(a.w_approx(), b.w_approx());
  EXPECT_EQ(a.bias(), b.bias());
}

TEST(LinearCorrectorTest, AdaptiveAdjustmentExample) {
  // Fig 4's beta -> beta' adjustment: recalibrating an already trained
  // model to a stricter target only moves the intercept.
  auto samples = MakeSamples(10000, 0.15, 10);
  LinearCorrector model = LinearCorrector::Train(samples);
  float w_before = model.w_approx();
  model.CalibrateIntercept(samples, 0.9999);
  EXPECT_EQ(model.w_approx(), w_before);
  auto metrics = model.Evaluate(samples);
  EXPECT_GE(metrics.label0_recall, 0.999);
}

}  // namespace
}  // namespace resinfer::core

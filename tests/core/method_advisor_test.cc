#include "core/method_advisor.h"

#include <gtest/gtest.h>

#include "core/method_factory.h"
#include "data/synthetic.h"
#include "test_util.h"

namespace resinfer::core {
namespace {

TEST(MethodAdvisorTest, CumulativeCurveIsMonotoneAndNormalized) {
  data::Dataset ds = testing::SmallDataset(2000, 40, 1.0, 71);
  SpectrumProfile profile = ProfileSpectrum(ds.base);
  ASSERT_EQ(profile.dim, 40);
  ASSERT_EQ(profile.cumulative_explained.size(), 41u);
  EXPECT_DOUBLE_EQ(profile.cumulative_explained[0], 0.0);
  EXPECT_NEAR(profile.cumulative_explained[40], 1.0, 1e-6);
  for (std::size_t k = 1; k < profile.cumulative_explained.size(); ++k) {
    EXPECT_GE(profile.cumulative_explained[k],
              profile.cumulative_explained[k - 1] - 1e-12);
  }
}

TEST(MethodAdvisorTest, ExplainedAtClampsOutOfRange) {
  data::Dataset ds = testing::SmallDataset(500, 16, 1.0, 72);
  SpectrumProfile profile = ProfileSpectrum(ds.base);
  EXPECT_DOUBLE_EQ(profile.ExplainedAt(-5), 0.0);
  EXPECT_NEAR(profile.ExplainedAt(100), 1.0, 1e-6);
}

TEST(MethodAdvisorTest, DimsForFractionInvertsExplainedAt) {
  data::Dataset ds = testing::SmallDataset(1500, 32, 1.2, 73);
  SpectrumProfile profile = ProfileSpectrum(ds.base);
  const int64_t k = profile.DimsForFraction(0.8);
  EXPECT_GE(profile.ExplainedAt(k), 0.8);
  if (k > 0) EXPECT_LT(profile.ExplainedAt(k - 1), 0.8);
}

TEST(MethodAdvisorTest, SkewedSpectrumRecommendsProjection) {
  // SIFT proxy: paper anchor says PCA-32 keeps ~82% of the variance.
  data::Dataset ds = data::GenerateSynthetic(data::SiftProxySpec());
  MethodAdvice advice = AdviseMethod(ProfileSpectrum(ds.base));
  EXPECT_EQ(advice.recommended, kMethodDdcRes);
  EXPECT_GT(advice.explained_variance_32, 0.6);
  EXPECT_NE(advice.rationale.find("skewed"), std::string::npos);
}

TEST(MethodAdvisorTest, FlatSpectrumRecommendsQuantization) {
  // GLOVE proxy: paper anchor says PCA-32 keeps ~18% of the variance.
  data::Dataset ds = data::GenerateSynthetic(data::GloveProxySpec());
  MethodAdvice advice = AdviseMethod(ProfileSpectrum(ds.base));
  EXPECT_EQ(advice.recommended, kMethodDdcOpq);
  EXPECT_LT(advice.explained_variance_32, 0.4);
  EXPECT_NE(advice.rationale.find("flat"), std::string::npos);
}

TEST(MethodAdvisorTest, ProfileFromPcaMatchesProfileFromData) {
  data::Dataset ds = testing::SmallDataset(1200, 24, 0.9, 74);
  linalg::PcaModel pca =
      linalg::PcaModel::Fit(ds.base.data(), ds.size(), ds.dim());
  SpectrumProfile from_pca = ProfileSpectrum(pca);
  SpectrumProfile from_data = ProfileSpectrum(ds.base);
  for (int64_t k : {4, 8, 16, 24}) {
    EXPECT_NEAR(from_pca.ExplainedAt(k), from_data.ExplainedAt(k), 1e-4);
  }
}

TEST(MethodAdvisorTest, SamplingKeepsProfileStable) {
  // Profiling a 4000-row set through a 1000-row sample must land close to
  // the full profile — the advisor runs on samples at scale.
  data::Dataset ds = testing::SmallDataset(4000, 32, 1.0, 75);
  SpectrumProfile full = ProfileSpectrum(ds.base, /*max_rows=*/4000);
  SpectrumProfile sampled = ProfileSpectrum(ds.base, /*max_rows=*/1000);
  EXPECT_NEAR(full.ExplainedAt(32), sampled.ExplainedAt(32), 0.05);
}

TEST(MethodAdvisorTest, ThresholdIsRespected) {
  data::Dataset ds = testing::SmallDataset(1000, 32, 1.0, 76);
  SpectrumProfile profile = ProfileSpectrum(ds.base);
  const double ev32 = profile.ExplainedAt(32);
  MethodAdvice low = AdviseMethod(profile, ev32 - 0.01);
  MethodAdvice high = AdviseMethod(profile, ev32 + 0.01);
  EXPECT_EQ(low.recommended, kMethodDdcRes);
  EXPECT_EQ(high.recommended, kMethodDdcOpq);
}

TEST(MethodAdvisorTest, ZeroVarianceDataDoesNotDivideByZero) {
  linalg::Matrix constant(50, 8);  // all zeros
  SpectrumProfile profile = ProfileSpectrum(constant);
  EXPECT_DOUBLE_EQ(profile.ExplainedAt(4), 0.0);
  MethodAdvice advice = AdviseMethod(profile);
  EXPECT_EQ(advice.recommended, kMethodDdcOpq);  // 0 < any threshold
}

}  // namespace
}  // namespace resinfer::core

#include "core/method_factory.h"

#include <gtest/gtest.h>

#include "data/ground_truth.h"
#include "data/metrics.h"
#include "test_util.h"

namespace resinfer::core {
namespace {

FactoryOptions SmallFactoryOptions() {
  FactoryOptions options;
  options.ddc_res.init_dim = 8;
  options.ddc_res.delta_dim = 8;
  options.ddc_pca.init_dim = 8;
  options.ddc_pca.delta_dim = 16;
  options.ddc_pca.training.max_queries = 60;
  options.ddc_pca.training.k = 10;
  options.ddc_opq.opq.pq.num_subspaces = 8;
  options.ddc_opq.opq.pq.nbits = 5;
  options.ddc_opq.opq.num_iterations = 2;
  options.ddc_opq.training.max_queries = 60;
  options.ddc_opq.training.k = 10;
  options.finger.rank = 6;
  return options;
}

TEST(MethodFactoryTest, AllMethodsConstruct) {
  data::Dataset ds = testing::SmallDataset(1500, 32, 1.0, 95, 8, 80);
  MethodFactory factory(&ds, SmallFactoryOptions());

  index::HnswOptions hnsw;
  hnsw.M = 8;
  hnsw.ef_construction = 50;
  index::HnswIndex graph = index::HnswIndex::Build(ds.base, hnsw);

  for (const std::string& name : AllMethodNames(/*include_finger=*/true)) {
    auto computer = factory.Make(name, &graph);
    ASSERT_NE(computer, nullptr) << name;
    EXPECT_EQ(computer->dim(), ds.dim()) << name;
    EXPECT_EQ(computer->size(), ds.size()) << name;
    // Smoke: one query through each.
    computer->BeginQuery(ds.queries.Row(0));
    auto est = computer->EstimateWithThreshold(0, index::kInfDistance);
    EXPECT_FALSE(est.pruned) << name;
  }
}

TEST(MethodFactoryTest, SharedArtifactsBuiltOnce) {
  data::Dataset ds = testing::SmallDataset(1000, 24, 1.0, 96, 4, 60);
  MethodFactory factory(&ds, SmallFactoryOptions());
  factory.EnsurePca();
  double t1 = factory.costs().pca_seconds;
  factory.EnsurePca();  // second call must not re-fit
  EXPECT_EQ(factory.costs().pca_seconds, t1);
}

TEST(MethodFactoryTest, CostsPopulated) {
  data::Dataset ds = testing::SmallDataset(1000, 32, 1.0, 97, 4, 60);
  MethodFactory factory(&ds, SmallFactoryOptions());
  auto ddc_res = factory.Make(kMethodDdcRes);
  auto ddc_opq = factory.Make(kMethodDdcOpq);
  EXPECT_GT(factory.costs().pca_seconds, 0.0);
  EXPECT_GT(factory.costs().opq_seconds, 0.0);
  EXPECT_GT(factory.costs().ddc_res_bytes, 0);
  EXPECT_GT(factory.costs().ddc_opq_bytes, 0);
}

TEST(MethodFactoryTest, EveryMethodKeepsHnswRecall) {
  data::Dataset ds = testing::SmallDataset(2500, 32, 1.0, 98, 16, 80);
  MethodFactory factory(&ds, SmallFactoryOptions());
  index::HnswOptions hnsw;
  hnsw.M = 8;
  hnsw.ef_construction = 60;
  index::HnswIndex graph = index::HnswIndex::Build(ds.base, hnsw);
  auto truth = data::BruteForceKnn(ds.base, ds.queries, 10);

  for (const std::string& name : AllMethodNames(/*include_finger=*/true)) {
    auto computer = factory.Make(name, &graph);
    std::vector<std::vector<int64_t>> results;
    index::HnswScratch scratch;
    for (int64_t q = 0; q < ds.queries.rows(); ++q) {
      auto found = graph.Search(*computer, ds.queries.Row(q), 10, 100,
                                &scratch);
      std::vector<int64_t> ids;
      for (const auto& nb : found) ids.push_back(nb.id);
      results.push_back(std::move(ids));
    }
    double recall = data::MeanRecallAtK(results, truth, 10);
    EXPECT_GT(recall, 0.85) << name << " recall " << recall;
  }
}

TEST(MethodFactoryTest, UnknownMethodAborts) {
  data::Dataset ds = testing::SmallDataset(100, 8, 1.0, 99, 2, 10);
  MethodFactory factory(&ds);
  EXPECT_DEATH(factory.Make("no-such-method"), "unknown method");
}

TEST(MethodFactoryTest, FingerWithoutGraphAborts) {
  data::Dataset ds = testing::SmallDataset(100, 8, 1.0, 100, 2, 10);
  MethodFactory factory(&ds);
  EXPECT_DEATH(factory.Make(kMethodFinger), "finger");
}

}  // namespace
}  // namespace resinfer::core

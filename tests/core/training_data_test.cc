#include "core/training_data.h"

#include <gtest/gtest.h>

#include "data/ground_truth.h"
#include "test_util.h"

namespace resinfer::core {
namespace {

TEST(TrainingDataTest, LabelsConsistentWithDistances) {
  data::Dataset ds = testing::SmallDataset(1000, 16, 1.0, 70, 4, 50);
  TrainingDataOptions options;
  options.k = 10;
  options.negatives_per_query = 20;
  options.max_queries = 20;
  auto pairs = CollectLabeledPairs(ds.base, ds.train_queries, options);
  ASSERT_FALSE(pairs.empty());
  for (const auto& p : pairs) {
    EXPECT_EQ(p.label, p.exact > p.tau ? 1 : 0);
    float direct =
        data::ExactL2Sqr(ds.base, p.id, ds.train_queries.Row(p.query_index));
    EXPECT_FLOAT_EQ(p.exact, direct);
  }
}

TEST(TrainingDataTest, GroupedByQueryAscending) {
  data::Dataset ds = testing::SmallDataset(500, 8, 1.0, 71, 4, 30);
  TrainingDataOptions options;
  options.max_queries = 10;
  auto pairs = CollectLabeledPairs(ds.base, ds.train_queries, options);
  for (std::size_t i = 1; i < pairs.size(); ++i) {
    EXPECT_GE(pairs[i].query_index, pairs[i - 1].query_index);
  }
}

TEST(TrainingDataTest, PositivesAreTheKnn) {
  data::Dataset ds = testing::SmallDataset(600, 8, 1.0, 72, 4, 10);
  TrainingDataOptions options;
  options.k = 5;
  options.negatives_per_query = 5;
  options.max_queries = 5;
  auto pairs = CollectLabeledPairs(ds.base, ds.train_queries, options);
  for (int64_t q = 0; q < 5; ++q) {
    auto knn = data::BruteForceKnnSingle(ds.base, ds.train_queries.Row(q), 5);
    // Each KNN id appears as a label-0 pair for this query.
    for (const auto& nb : knn) {
      bool found = false;
      for (const auto& p : pairs) {
        if (p.query_index == q && p.id == nb.id && p.label == 0) {
          found = true;
          break;
        }
      }
      EXPECT_TRUE(found) << "query " << q << " id " << nb.id;
    }
  }
}

TEST(TrainingDataTest, TauIsKthDistance) {
  data::Dataset ds = testing::SmallDataset(400, 8, 1.0, 73, 4, 6);
  TrainingDataOptions options;
  options.k = 7;
  options.max_queries = 6;
  auto pairs = CollectLabeledPairs(ds.base, ds.train_queries, options);
  for (int64_t q = 0; q < 6; ++q) {
    auto knn = data::BruteForceKnnSingle(ds.base, ds.train_queries.Row(q), 7);
    for (const auto& p : pairs) {
      if (p.query_index == q) {
        EXPECT_FLOAT_EQ(p.tau, knn.back().distance);
      }
    }
  }
}

TEST(TrainingDataTest, ContainsBothLabels) {
  data::Dataset ds = testing::SmallDataset(2000, 16, 1.0, 74, 4, 50);
  TrainingDataOptions options;
  options.max_queries = 30;
  auto pairs = CollectLabeledPairs(ds.base, ds.train_queries, options);
  int64_t n0 = 0, n1 = 0;
  for (const auto& p : pairs) (p.label == 0 ? n0 : n1)++;
  EXPECT_GT(n0, 100);
  EXPECT_GT(n1, 100);
}

TEST(TrainingDataTest, MaterializePreservesOrderAndLabels) {
  data::Dataset ds = testing::SmallDataset(300, 8, 1.0, 75, 4, 10);
  TrainingDataOptions options;
  options.max_queries = 4;
  auto pairs = CollectLabeledPairs(ds.base, ds.train_queries, options);
  auto samples = MaterializeSamples(
      pairs, [&](int64_t q, int64_t id, float* extra) {
        *extra = static_cast<float>(q);
        return static_cast<float>(id);
      });
  ASSERT_EQ(samples.size(), pairs.size());
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ(samples[i].label, pairs[i].label);
    EXPECT_FLOAT_EQ(samples[i].approx, static_cast<float>(pairs[i].id));
    EXPECT_FLOAT_EQ(samples[i].extra,
                    static_cast<float>(pairs[i].query_index));
    EXPECT_FLOAT_EQ(samples[i].tau, pairs[i].tau);
  }
}

}  // namespace
}  // namespace resinfer::core

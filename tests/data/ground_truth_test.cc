#include "data/ground_truth.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "simd/kernels.h"
#include "test_util.h"

namespace resinfer::data {
namespace {

TEST(GroundTruthTest, SingleQueryMatchesNaive) {
  Dataset ds = testing::SmallDataset(500, 16, 1.0, 91, 4, 4);
  const float* q = ds.queries.Row(0);

  // Naive full sort.
  std::vector<std::pair<float, int64_t>> all;
  for (int64_t i = 0; i < ds.size(); ++i) {
    all.emplace_back(simd::L2Sqr(ds.base.Row(i), q, 16), i);
  }
  std::sort(all.begin(), all.end());

  std::vector<Neighbor> knn = BruteForceKnnSingle(ds.base, q, 10);
  ASSERT_EQ(knn.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(knn[i].id, all[i].second);
    EXPECT_FLOAT_EQ(knn[i].distance, all[i].first);
  }
}

TEST(GroundTruthTest, ResultsAscendByDistance) {
  Dataset ds = testing::SmallDataset(300, 8, 0.5, 92, 4, 4);
  std::vector<Neighbor> knn = BruteForceKnnSingle(ds.base, ds.queries.Row(1), 20);
  for (std::size_t i = 1; i < knn.size(); ++i) {
    EXPECT_LE(knn[i - 1].distance, knn[i].distance);
  }
}

TEST(GroundTruthTest, KClampedToBaseSize) {
  Dataset ds = testing::SmallDataset(5, 8, 0.5, 93, 2, 2);
  std::vector<Neighbor> knn = BruteForceKnnSingle(ds.base, ds.queries.Row(0), 100);
  EXPECT_EQ(knn.size(), 5u);
}

TEST(GroundTruthTest, BatchMatchesSingle) {
  Dataset ds = testing::SmallDataset(400, 12, 1.0, 94, 6, 4);
  auto batch = BruteForceKnn(ds.base, ds.queries, 7);
  ASSERT_EQ(batch.size(), 6u);
  for (int64_t q = 0; q < 6; ++q) {
    auto single = BruteForceKnnSingle(ds.base, ds.queries.Row(q), 7);
    ASSERT_EQ(batch[q].size(), single.size());
    for (std::size_t i = 0; i < single.size(); ++i) {
      EXPECT_EQ(batch[q][i], single[i].id);
    }
  }
}

TEST(GroundTruthTest, SelfQueryReturnsSelfFirst) {
  Dataset ds = testing::SmallDataset(200, 8, 1.0, 95, 2, 2);
  auto knn = BruteForceKnnSingle(ds.base, ds.base.Row(42), 3);
  EXPECT_EQ(knn[0].id, 42);
  EXPECT_EQ(knn[0].distance, 0.0f);
}

}  // namespace
}  // namespace resinfer::data

#include "data/metric.h"

#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/ground_truth.h"
#include "simd/kernels.h"
#include "test_util.h"

namespace resinfer::data {
namespace {

TEST(MetricTest, MetricNames) {
  EXPECT_STREQ(MetricName(Metric::kL2), "l2");
  EXPECT_STREQ(MetricName(Metric::kCosine), "cosine");
  EXPECT_STREQ(MetricName(Metric::kInnerProduct), "ip");
}

TEST(MetricTest, NormalizeRowsProducesUnitNorms) {
  linalg::Matrix m = testing::RandomMatrix(50, 12, 11);
  linalg::Matrix unit = NormalizeRowsL2(m);
  for (int64_t i = 0; i < 50; ++i) {
    EXPECT_NEAR(simd::Norm2Sqr(unit.Row(i), 12), 1.0f, 1e-4f);
  }
}

TEST(MetricTest, NormalizeLeavesZeroRowsAtZero) {
  linalg::Matrix m(3, 4);  // zero-initialized
  m.At(1, 2) = 5.0f;
  linalg::Matrix unit = NormalizeRowsL2(m);
  EXPECT_EQ(simd::Norm2Sqr(unit.Row(0), 4), 0.0f);
  EXPECT_NEAR(simd::Norm2Sqr(unit.Row(1), 4), 1.0f, 1e-5f);
  EXPECT_EQ(simd::Norm2Sqr(unit.Row(2), 4), 0.0f);
}

TEST(MetricTest, CosineRankingEqualsL2RankingAfterNormalization) {
  // For unit vectors ||q-x||^2 = 2 - 2 cos, so the L2 KNN of the
  // normalized data must equal the cosine top-k of the originals.
  linalg::Matrix base = testing::RandomMatrix(400, 16, 13);
  linalg::Matrix queries = testing::RandomMatrix(10, 16, 14);
  linalg::Matrix nbase = NormalizeRowsL2(base);
  linalg::Matrix nqueries = NormalizeRowsL2(queries);
  for (int64_t q = 0; q < queries.rows(); ++q) {
    std::vector<Neighbor> by_cosine = TopKByCosine(base, queries.Row(q), 10);
    std::vector<Neighbor> by_l2 =
        BruteForceKnnSingle(nbase, nqueries.Row(q), 10);
    for (std::size_t r = 0; r < 10; ++r) {
      EXPECT_EQ(by_l2[r].id, by_cosine[r].id) << "query " << q << " rank "
                                              << r;
    }
  }
}

TEST(MetricTest, MipsFitFindsMaxNorm) {
  linalg::Matrix base = testing::RandomMatrix(100, 8, 17);
  MipsTransform t = MipsTransform::Fit(base);
  float max_norm = 0.0f;
  for (int64_t i = 0; i < 100; ++i) {
    max_norm = std::max(max_norm,
                        std::sqrt(simd::Norm2Sqr(base.Row(i), 8)));
  }
  EXPECT_NEAR(t.max_norm(), max_norm, 1e-5f);
}

TEST(MetricTest, MipsAugmentedBaseRowsHaveConstantNorm) {
  // Every augmented base row has norm exactly Φ — that is what makes the
  // reduction order-preserving.
  linalg::Matrix base = testing::RandomMatrix(100, 8, 19);
  MipsTransform t = MipsTransform::Fit(base);
  linalg::Matrix augmented = t.TransformBase(base);
  ASSERT_EQ(augmented.cols(), 9);
  const float phi_sqr = t.max_norm() * t.max_norm();
  for (int64_t i = 0; i < 100; ++i) {
    EXPECT_NEAR(simd::Norm2Sqr(augmented.Row(i), 9), phi_sqr,
                1e-3f * (1.0f + phi_sqr));
  }
}

TEST(MetricTest, MipsDistanceIdentity) {
  // ||q' - x'||^2 = ||q||^2 + Φ^2 - 2 <q, x> exactly.
  linalg::Matrix base = testing::RandomMatrix(60, 8, 23);
  linalg::Matrix queries = testing::RandomMatrix(5, 8, 24);
  MipsTransform t = MipsTransform::Fit(base);
  linalg::Matrix abase = t.TransformBase(base);
  linalg::Matrix aqueries = t.TransformQueries(queries);
  const float phi_sqr = t.max_norm() * t.max_norm();
  for (int64_t q = 0; q < 5; ++q) {
    const float qnorm = simd::Norm2Sqr(queries.Row(q), 8);
    for (int64_t i = 0; i < 60; ++i) {
      const float lhs = simd::L2Sqr(aqueries.Row(q), abase.Row(i), 9);
      const float ip = simd::InnerProduct(queries.Row(q), base.Row(i), 8);
      EXPECT_NEAR(lhs, qnorm + phi_sqr - 2.0f * ip,
                  1e-3f * (1.0f + std::abs(lhs)));
    }
  }
}

class MipsRankingTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MipsRankingTest, L2OnAugmentedEqualsDescendingInnerProduct) {
  linalg::Matrix base = testing::RandomMatrix(500, 12, GetParam());
  linalg::Matrix queries = testing::RandomMatrix(8, 12, GetParam() + 1);
  MipsTransform t = MipsTransform::Fit(base);
  linalg::Matrix abase = t.TransformBase(base);
  linalg::Matrix aqueries = t.TransformQueries(queries);
  for (int64_t q = 0; q < queries.rows(); ++q) {
    std::vector<Neighbor> by_ip = TopKByInnerProduct(base, queries.Row(q), 10);
    std::vector<Neighbor> by_l2 =
        BruteForceKnnSingle(abase, aqueries.Row(q), 10);
    for (std::size_t r = 0; r < 10; ++r) {
      EXPECT_EQ(by_l2[r].id, by_ip[r].id) << "query " << q << " rank " << r;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MipsRankingTest,
                         ::testing::Values(101u, 202u, 303u, 404u));

TEST(MetricTest, FromMaxNormHandlesOvershootingRows) {
  // Rows with norm above the (stale) bound pad with 0 instead of NaN.
  linalg::Matrix base(2, 2);
  base.At(0, 0) = 3.0f;
  base.At(1, 0) = 5.0f;
  MipsTransform t = MipsTransform::FromMaxNorm(4.0f);
  linalg::Matrix augmented = t.TransformBase(base);
  EXPECT_TRUE(std::isfinite(augmented.At(1, 2)));
  EXPECT_EQ(augmented.At(1, 2), 0.0f);
  EXPECT_NEAR(augmented.At(0, 2), std::sqrt(16.0f - 9.0f), 1e-5f);
}

TEST(MetricTest, TopKClampsToBaseSize) {
  linalg::Matrix base = testing::RandomMatrix(5, 4, 77);
  linalg::Matrix q = testing::RandomMatrix(1, 4, 78);
  EXPECT_EQ(TopKByInnerProduct(base, q.Row(0), 10).size(), 5u);
  EXPECT_EQ(TopKByCosine(base, q.Row(0), 10).size(), 5u);
}

}  // namespace
}  // namespace resinfer::data

#include "data/metrics.h"

#include <gtest/gtest.h>

namespace resinfer::data {
namespace {

TEST(MetricsTest, PerfectRecall) {
  EXPECT_DOUBLE_EQ(RecallAtK({1, 2, 3}, {1, 2, 3}, 3), 1.0);
  EXPECT_DOUBLE_EQ(RecallAtK({3, 1, 2}, {1, 2, 3}, 3), 1.0);  // order-free
}

TEST(MetricsTest, PartialRecall) {
  EXPECT_DOUBLE_EQ(RecallAtK({1, 9, 8}, {1, 2, 3}, 3), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(RecallAtK({}, {1, 2, 3}, 3), 0.0);
}

TEST(MetricsTest, TruthLongerThanK) {
  // Only the first k truth entries count.
  EXPECT_DOUBLE_EQ(RecallAtK({4, 5}, {1, 2, 3, 4, 5}, 2), 0.0);
  EXPECT_DOUBLE_EQ(RecallAtK({1, 2}, {1, 2, 3, 4, 5}, 2), 1.0);
}

TEST(MetricsTest, ResultLongerThanKIgnoresTail) {
  EXPECT_DOUBLE_EQ(RecallAtK({9, 8, 1, 2}, {1, 2}, 2), 0.0);
}

TEST(MetricsTest, MeanRecall) {
  std::vector<std::vector<int64_t>> results = {{1, 2}, {5, 6}};
  std::vector<std::vector<int64_t>> truth = {{1, 2}, {6, 7}};
  EXPECT_DOUBLE_EQ(MeanRecallAtK(results, truth, 2), 0.75);
  EXPECT_DOUBLE_EQ(MeanRecallAtK({}, {}, 5), 0.0);
}

}  // namespace
}  // namespace resinfer::data

#include "data/synthetic.h"

#include <cmath>

#include <gtest/gtest.h>

#include "linalg/pca.h"
#include "simd/kernels.h"
#include "util/parallel.h"

namespace resinfer::data {
namespace {

TEST(SyntheticTest, ShapesMatchSpec) {
  SyntheticSpec spec;
  spec.dim = 24;
  spec.num_base = 500;
  spec.num_queries = 10;
  spec.num_train_queries = 20;
  Dataset ds = GenerateSynthetic(spec);
  EXPECT_EQ(ds.base.rows(), 500);
  EXPECT_EQ(ds.base.cols(), 24);
  EXPECT_EQ(ds.queries.rows(), 10);
  EXPECT_EQ(ds.train_queries.rows(), 20);
}

TEST(SyntheticTest, DeterministicAcrossThreadCounts) {
  SyntheticSpec spec;
  spec.dim = 16;
  spec.num_base = 2000;
  spec.num_queries = 8;
  spec.num_train_queries = 8;

  SetDefaultThreadCount(1);
  Dataset single = GenerateSynthetic(spec);
  SetDefaultThreadCount(0);
  Dataset multi = GenerateSynthetic(spec);
  EXPECT_EQ(linalg::MaxAbsDifference(single.base, multi.base), 0.0);
  EXPECT_EQ(linalg::MaxAbsDifference(single.queries, multi.queries), 0.0);
}

TEST(SyntheticTest, SeedChangesData) {
  SyntheticSpec a;
  a.dim = 8;
  a.num_base = 100;
  SyntheticSpec b = a;
  b.seed = a.seed + 1;
  Dataset da = GenerateSynthetic(a);
  Dataset db = GenerateSynthetic(b);
  EXPECT_GT(linalg::MaxAbsDifference(da.base, db.base), 1e-3);
}

TEST(SyntheticTest, NormalizeProducesUnitNorms) {
  SyntheticSpec spec;
  spec.dim = 32;
  spec.num_base = 200;
  spec.normalize = true;
  Dataset ds = GenerateSynthetic(spec);
  for (int64_t i = 0; i < ds.size(); ++i) {
    EXPECT_NEAR(simd::Norm2Sqr(ds.base.Row(i), 32), 1.0f, 1e-4f);
  }
}

// The alpha calibration anchors from the paper (§VII Exp-1): PCA-32
// explained variance ratios. Tolerances are loose — the anchors guide the
// qualitative split between skewed (image) and flat (text) spectra.
struct EvrAnchor {
  const char* name;
  double target;
  double tolerance;
};

TEST(SyntheticTest, ProxySpectraMatchPaperAnchors) {
  struct Case {
    SyntheticSpec spec;
    double target;
    double tolerance;
  };
  const std::vector<Case> cases = {
      {SiftProxySpec(), 0.82, 0.12},
      {GistProxySpec(), 0.67, 0.12},
      {Word2vecProxySpec(), 0.36, 0.12},
      {GloveProxySpec(), 0.18, 0.10},
  };
  for (const Case& c : cases) {
    SyntheticSpec spec = c.spec;
    spec.num_base = 4000;  // keep the test fast
    spec.num_queries = 4;
    spec.num_train_queries = 4;
    Dataset ds = GenerateSynthetic(spec);
    linalg::PcaModel pca =
        linalg::PcaModel::Fit(ds.base.data(), ds.size(), ds.dim());
    double evr = pca.ExplainedVarianceRatio(32);
    EXPECT_NEAR(evr, c.target, c.tolerance)
        << spec.name << " PCA-32 explained variance";
  }
}

TEST(SyntheticTest, AllProxiesGenerate) {
  for (SyntheticSpec spec : AllProxySpecs()) {
    spec.num_base = 50;
    spec.num_queries = 2;
    spec.num_train_queries = 2;
    Dataset ds = GenerateSynthetic(spec);
    EXPECT_EQ(ds.base.rows(), 50) << spec.name;
    EXPECT_EQ(ds.dim(), spec.dim) << spec.name;
    // No NaNs.
    for (int64_t i = 0; i < ds.base.size(); ++i)
      ASSERT_TRUE(std::isfinite(ds.base.data()[i])) << spec.name;
  }
}

TEST(SyntheticTest, OutOfDistributionQueriesAreFartherFromBase) {
  SyntheticSpec spec;
  spec.dim = 32;
  spec.num_base = 1000;
  spec.num_queries = 30;
  spec.num_train_queries = 4;
  spec.cluster_spread = 2.0;
  Dataset ds = GenerateSynthetic(spec);
  Matrix ood = GenerateOutOfDistributionQueries(spec, 30, 4.0, 999);

  // Mean NN distance of OOD queries should exceed in-distribution queries.
  auto mean_nn = [&](const Matrix& queries) {
    double total = 0.0;
    for (int64_t q = 0; q < queries.rows(); ++q) {
      float best = 1e30f;
      for (int64_t i = 0; i < ds.size(); ++i) {
        best = std::min(best, simd::L2Sqr(ds.base.Row(i), queries.Row(q),
                                          static_cast<std::size_t>(32)));
      }
      total += best;
    }
    return total / queries.rows();
  };
  EXPECT_GT(mean_nn(ood), 1.2 * mean_nn(ds.queries));
}

TEST(SyntheticTest, HigherAlphaMeansMoreSkew) {
  SyntheticSpec flat;
  flat.dim = 32;
  flat.num_base = 3000;
  flat.spectrum_alpha = 0.1;
  SyntheticSpec skewed = flat;
  skewed.spectrum_alpha = 1.5;
  Dataset dflat = GenerateSynthetic(flat);
  Dataset dskew = GenerateSynthetic(skewed);
  linalg::PcaModel pflat =
      linalg::PcaModel::Fit(dflat.base.data(), 3000, 32);
  linalg::PcaModel pskew =
      linalg::PcaModel::Fit(dskew.base.data(), 3000, 32);
  EXPECT_GT(pskew.ExplainedVarianceRatio(4),
            pflat.ExplainedVarianceRatio(4) + 0.1);
}

}  // namespace
}  // namespace resinfer::data

#include "data/vec_io.h"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "test_util.h"

namespace resinfer::data {
namespace {

class VecIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "resinfer_vec_io_test";
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

TEST_F(VecIoTest, FvecsRoundTrip) {
  linalg::Matrix original = testing::RandomMatrix(17, 9, 81);
  std::string error;
  ASSERT_TRUE(WriteFvecs(Path("a.fvecs"), original, &error)) << error;

  linalg::Matrix loaded;
  ASSERT_TRUE(ReadFvecs(Path("a.fvecs"), &loaded, &error)) << error;
  ASSERT_EQ(loaded.rows(), 17);
  ASSERT_EQ(loaded.cols(), 9);
  EXPECT_EQ(linalg::MaxAbsDifference(original, loaded), 0.0);
}

TEST_F(VecIoTest, IvecsRoundTrip) {
  std::vector<std::vector<int32_t>> rows = {{1, 2, 3}, {}, {7}};
  std::string error;
  ASSERT_TRUE(WriteIvecs(Path("a.ivecs"), rows, &error)) << error;
  std::vector<std::vector<int32_t>> loaded;
  ASSERT_TRUE(ReadIvecs(Path("a.ivecs"), &loaded, &error)) << error;
  EXPECT_EQ(loaded, rows);
}

TEST_F(VecIoTest, BvecsWidensToFloat) {
  // Hand-roll a bvecs file: 2 vectors of dim 3.
  std::ofstream out(Path("a.bvecs"), std::ios::binary);
  int32_t d = 3;
  uint8_t v1[3] = {0, 128, 255};
  uint8_t v2[3] = {1, 2, 3};
  out.write(reinterpret_cast<char*>(&d), 4);
  out.write(reinterpret_cast<char*>(v1), 3);
  out.write(reinterpret_cast<char*>(&d), 4);
  out.write(reinterpret_cast<char*>(v2), 3);
  out.close();

  linalg::Matrix loaded;
  std::string error;
  ASSERT_TRUE(ReadBvecs(Path("a.bvecs"), &loaded, &error)) << error;
  ASSERT_EQ(loaded.rows(), 2);
  ASSERT_EQ(loaded.cols(), 3);
  EXPECT_FLOAT_EQ(loaded.At(0, 2), 255.0f);
  EXPECT_FLOAT_EQ(loaded.At(1, 0), 1.0f);
}

TEST_F(VecIoTest, MissingFileFailsGracefully) {
  linalg::Matrix out;
  std::string error;
  EXPECT_FALSE(ReadFvecs(Path("missing.fvecs"), &out, &error));
  EXPECT_FALSE(error.empty());
}

TEST_F(VecIoTest, TruncatedFileFails) {
  // Write a valid file then chop bytes off the end.
  linalg::Matrix original = testing::RandomMatrix(4, 8, 82);
  std::string error;
  ASSERT_TRUE(WriteFvecs(Path("t.fvecs"), original, &error));
  std::filesystem::resize_file(Path("t.fvecs"),
                               std::filesystem::file_size(Path("t.fvecs")) -
                                   5);
  linalg::Matrix out;
  EXPECT_FALSE(ReadFvecs(Path("t.fvecs"), &out, &error));
  EXPECT_FALSE(error.empty());
}

TEST_F(VecIoTest, NegativeDimensionFails) {
  std::ofstream out(Path("bad.fvecs"), std::ios::binary);
  int32_t d = -3;
  out.write(reinterpret_cast<char*>(&d), 4);
  float payload[3] = {1, 2, 3};
  out.write(reinterpret_cast<char*>(payload), 12);
  out.close();
  linalg::Matrix m;
  std::string error;
  EXPECT_FALSE(ReadFvecs(Path("bad.fvecs"), &m, &error));
}

TEST_F(VecIoTest, InconsistentDimensionFails) {
  std::ofstream out(Path("mixed.fvecs"), std::ios::binary);
  int32_t d1 = 2, d2 = 3;
  float p2[2] = {1, 2};
  float p3[3] = {1, 2, 3};
  out.write(reinterpret_cast<char*>(&d1), 4);
  out.write(reinterpret_cast<char*>(p2), 8);
  out.write(reinterpret_cast<char*>(&d2), 4);
  out.write(reinterpret_cast<char*>(p3), 12);
  out.close();
  linalg::Matrix m;
  std::string error;
  EXPECT_FALSE(ReadFvecs(Path("mixed.fvecs"), &m, &error));
}

TEST_F(VecIoTest, EmptyFileYieldsEmptyMatrix) {
  std::ofstream out(Path("empty.fvecs"), std::ios::binary);
  out.close();
  linalg::Matrix m;
  std::string error;
  ASSERT_TRUE(ReadFvecs(Path("empty.fvecs"), &m, &error)) << error;
  EXPECT_EQ(m.rows(), 0);
}

}  // namespace
}  // namespace resinfer::data

#include "data/vec_io.h"

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>

#include <gtest/gtest.h>

#include "test_util.h"

namespace resinfer::data {
namespace {

class VecIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "resinfer_vec_io_test";
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

TEST_F(VecIoTest, FvecsRoundTrip) {
  linalg::Matrix original = testing::RandomMatrix(17, 9, 81);
  util::Status s = WriteFvecs(Path("a.fvecs"), original);
  ASSERT_TRUE(s.ok()) << s.ToString();

  linalg::Matrix loaded;
  s = ReadFvecs(Path("a.fvecs"), &loaded);
  ASSERT_TRUE(s.ok()) << s.ToString();
  ASSERT_EQ(loaded.rows(), 17);
  ASSERT_EQ(loaded.cols(), 9);
  EXPECT_EQ(linalg::MaxAbsDifference(original, loaded), 0.0);
}

TEST_F(VecIoTest, IvecsRoundTrip) {
  std::vector<std::vector<int32_t>> rows = {{1, 2, 3}, {}, {7}};
  util::Status s = WriteIvecs(Path("a.ivecs"), rows);
  ASSERT_TRUE(s.ok()) << s.ToString();
  std::vector<std::vector<int32_t>> loaded;
  s = ReadIvecs(Path("a.ivecs"), &loaded);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(loaded, rows);
}

TEST_F(VecIoTest, BvecsWidensToFloat) {
  // Hand-roll a bvecs file: 2 vectors of dim 3.
  std::ofstream out(Path("a.bvecs"), std::ios::binary);
  int32_t d = 3;
  uint8_t v1[3] = {0, 128, 255};
  uint8_t v2[3] = {1, 2, 3};
  out.write(reinterpret_cast<char*>(&d), 4);
  out.write(reinterpret_cast<char*>(v1), 3);
  out.write(reinterpret_cast<char*>(&d), 4);
  out.write(reinterpret_cast<char*>(v2), 3);
  out.close();

  linalg::Matrix loaded;
  util::Status s = ReadBvecs(Path("a.bvecs"), &loaded);
  ASSERT_TRUE(s.ok()) << s.ToString();
  ASSERT_EQ(loaded.rows(), 2);
  ASSERT_EQ(loaded.cols(), 3);
  EXPECT_FLOAT_EQ(loaded.At(0, 2), 255.0f);
  EXPECT_FLOAT_EQ(loaded.At(1, 0), 1.0f);
}

TEST_F(VecIoTest, MissingFileFailsGracefully) {
  linalg::Matrix out;
  util::Status s = ReadFvecs(Path("missing.fvecs"), &out);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), util::StatusCode::kNotFound);
  EXPECT_FALSE(s.message().empty());
}

TEST_F(VecIoTest, TruncatedFileFails) {
  // Write a valid file then chop bytes off the end.
  linalg::Matrix original = testing::RandomMatrix(4, 8, 82);
  ASSERT_TRUE(WriteFvecs(Path("t.fvecs"), original).ok());
  std::filesystem::resize_file(Path("t.fvecs"),
                               std::filesystem::file_size(Path("t.fvecs")) -
                                   5);
  linalg::Matrix out;
  util::Status s = ReadFvecs(Path("t.fvecs"), &out);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), util::StatusCode::kCorruption);
  EXPECT_FALSE(s.message().empty());
}

TEST_F(VecIoTest, NegativeDimensionFails) {
  std::ofstream out(Path("bad.fvecs"), std::ios::binary);
  int32_t d = -3;
  out.write(reinterpret_cast<char*>(&d), 4);
  float payload[3] = {1, 2, 3};
  out.write(reinterpret_cast<char*>(payload), 12);
  out.close();
  linalg::Matrix m;
  EXPECT_EQ(ReadFvecs(Path("bad.fvecs"), &m).code(),
            util::StatusCode::kCorruption);
}

TEST_F(VecIoTest, InconsistentDimensionFails) {
  std::ofstream out(Path("mixed.fvecs"), std::ios::binary);
  int32_t d1 = 2, d2 = 3;
  float p2[2] = {1, 2};
  float p3[3] = {1, 2, 3};
  out.write(reinterpret_cast<char*>(&d1), 4);
  out.write(reinterpret_cast<char*>(p2), 8);
  out.write(reinterpret_cast<char*>(&d2), 4);
  out.write(reinterpret_cast<char*>(p3), 12);
  out.close();
  linalg::Matrix m;
  EXPECT_EQ(ReadFvecs(Path("mixed.fvecs"), &m).code(),
            util::StatusCode::kCorruption);
}

TEST_F(VecIoTest, EmptyFileYieldsEmptyMatrix) {
  std::ofstream out(Path("empty.fvecs"), std::ios::binary);
  out.close();
  linalg::Matrix m;
  util::Status s = ReadFvecs(Path("empty.fvecs"), &m);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(m.rows(), 0);
}

// Writes a 4 x 2 fvecs file whose row 1 contains a NaN and row 2 an Inf.
std::string WriteNonFiniteFile(const std::filesystem::path& dir) {
  linalg::Matrix m(4, 2);
  for (int64_t i = 0; i < 4; ++i) {
    m.At(i, 0) = static_cast<float>(i);
    m.At(i, 1) = static_cast<float>(10 * i);
  }
  m.At(1, 1) = std::numeric_limits<float>::quiet_NaN();
  m.At(2, 0) = std::numeric_limits<float>::infinity();
  const std::string path = (dir / "nonfinite.fvecs").string();
  EXPECT_TRUE(WriteFvecs(path, m).ok());
  return path;
}

TEST_F(VecIoTest, NonFiniteRejectedByDefault) {
  const std::string path = WriteNonFiniteFile(dir_);
  linalg::Matrix m;
  util::Status s = ReadFvecs(path, &m);
  EXPECT_EQ(s.code(), util::StatusCode::kInvalidArgument);
  // The message should name the offending vector so the user can fix it.
  EXPECT_NE(s.message().find("vector 1"), std::string::npos) << s.ToString();
}

TEST_F(VecIoTest, FvecsViewServesRowsInPlaceFromTheMapping) {
  linalg::Matrix original = testing::RandomMatrix(23, 7, 83);
  ASSERT_TRUE(WriteFvecs(Path("view.fvecs"), original).ok());

  FvecsView view;
  util::Status s = FvecsView::Open(Path("view.fvecs"), &view);
  ASSERT_TRUE(s.ok()) << s.ToString();
  ASSERT_EQ(view.rows(), 23);
  ASSERT_EQ(view.dim(), 7);
  ASSERT_FALSE(view.storage().empty());
  for (int64_t i = 0; i < view.rows(); ++i) {
    const float* row = view.Row(i);
    // Rows are served from inside the mapping, not a heap copy.
    ASSERT_GE(reinterpret_cast<const uint8_t*>(row), view.storage().data());
    ASSERT_LT(reinterpret_cast<const uint8_t*>(row),
              view.storage().data() + view.storage().size());
    for (int64_t c = 0; c < view.dim(); ++c) {
      ASSERT_EQ(row[c], original.At(i, c)) << i << "," << c;
    }
  }
}

TEST_F(VecIoTest, FvecsViewSharingTheStoragePinsTheRows) {
  linalg::Matrix original = testing::RandomMatrix(3, 4, 84);
  ASSERT_TRUE(WriteFvecs(Path("pin.fvecs"), original).ok());
  storage::Blob pin;
  const float* row1 = nullptr;
  {
    FvecsView view;
    ASSERT_TRUE(FvecsView::Open(Path("pin.fvecs"), &view).ok());
    pin = view.storage();
    row1 = view.Row(1);
  }  // the view dies; the shared handle must keep the mapping alive
  for (int64_t c = 0; c < 4; ++c) {
    EXPECT_EQ(row1[c], original.At(1, c)) << c;
  }
}

TEST_F(VecIoTest, FvecsViewValidatesTheFrameStructure) {
  // Empty file: a valid zero-row view.
  { std::ofstream out(Path("empty.fvecs"), std::ios::binary); }
  FvecsView view;
  util::Status s = FvecsView::Open(Path("empty.fvecs"), &view);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(view.rows(), 0);

  EXPECT_EQ(FvecsView::Open(Path("missing.fvecs"), &view).code(),
            util::StatusCode::kNotFound);

  // Truncation breaks the whole-number-of-records invariant.
  linalg::Matrix m = testing::RandomMatrix(4, 5, 85);
  ASSERT_TRUE(WriteFvecs(Path("short.fvecs"), m).ok());
  std::filesystem::resize_file(
      Path("short.fvecs"), std::filesystem::file_size(Path("short.fvecs")) - 3);
  EXPECT_EQ(FvecsView::Open(Path("short.fvecs"), &view).code(),
            util::StatusCode::kCorruption);

  // A record whose dim header disagrees with the first must be caught at
  // Open — Row() does no per-call validation.
  {
    std::ofstream out(Path("mixed.fvecs"), std::ios::binary);
    int32_t d2 = 2, d_bad = 7;
    float p[2] = {1.0f, 2.0f};
    out.write(reinterpret_cast<char*>(&d2), 4);
    out.write(reinterpret_cast<char*>(p), 8);
    out.write(reinterpret_cast<char*>(&d_bad), 4);
    out.write(reinterpret_cast<char*>(p), 8);
  }
  s = FvecsView::Open(Path("mixed.fvecs"), &view);
  EXPECT_EQ(s.code(), util::StatusCode::kCorruption);
  EXPECT_NE(s.message().find("inconsistent dimensions"), std::string::npos);

  // Non-positive leading dimension.
  {
    std::ofstream out(Path("neg.fvecs"), std::ios::binary);
    int32_t d = -1;
    float p[1] = {0.0f};
    out.write(reinterpret_cast<char*>(&d), 4);
    out.write(reinterpret_cast<char*>(p), 4);
  }
  EXPECT_EQ(FvecsView::Open(Path("neg.fvecs"), &view).code(),
            util::StatusCode::kCorruption);
}

TEST_F(VecIoTest, NonFiniteDropPolicySkipsAndCounts) {
  const std::string path = WriteNonFiniteFile(dir_);
  linalg::Matrix m;
  ReadStats stats;
  util::Status s = ReadFvecs(path, &m, NonFinitePolicy::kDrop, &stats);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(stats.rows_read, 2);
  EXPECT_EQ(stats.dropped_rows, 2);
  EXPECT_EQ(stats.first_bad_row, 1);
  // Surviving rows are the finite ones, in order.
  EXPECT_FLOAT_EQ(m.At(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(m.At(1, 0), 3.0f);
  EXPECT_FLOAT_EQ(m.At(1, 1), 30.0f);
}

TEST_F(VecIoTest, NonFiniteKeepPolicyPreservesRows) {
  const std::string path = WriteNonFiniteFile(dir_);
  linalg::Matrix m;
  ReadStats stats;
  util::Status s = ReadFvecs(path, &m, NonFinitePolicy::kKeep, &stats);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(m.rows(), 4);
  EXPECT_EQ(stats.dropped_rows, 0);
  EXPECT_EQ(stats.first_bad_row, 1);
  EXPECT_TRUE(std::isnan(m.At(1, 1)));
}

}  // namespace
}  // namespace resinfer::data

#include "index/batch.h"

#include <atomic>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/ground_truth.h"
#include "data/metrics.h"
#include "test_util.h"

namespace resinfer::index {
namespace {

struct BatchFixture {
  data::Dataset ds = testing::SmallDataset(2500, 24, 0.8, 61, 64, 100);
  HnswIndex hnsw;
  IvfIndex ivf;

  BatchFixture()
      : hnsw([this] {
          HnswOptions options;
          options.ef_construction = 60;
          return HnswIndex::Build(ds.base, options);
        }()),
        ivf(IvfIndex::Build(ds.base)) {}

  ComputerFactory ExactFactory() {
    return [this] {
      return std::make_unique<FlatDistanceComputer>(ds.base.data(),
                                                    ds.size(), 24);
    };
  }
};

BatchFixture& Fixture() {
  static BatchFixture* fixture = new BatchFixture();
  return *fixture;
}

TEST(BatchTest, FlatBatchMatchesGroundTruth) {
  BatchFixture& f = Fixture();
  FlatIndex flat(f.ds.base);
  BatchResult batch =
      BatchSearchFlat(flat, f.ExactFactory(), f.ds.queries, 10);
  ASSERT_EQ(batch.results.size(), 64u);
  std::vector<std::vector<int64_t>> truth =
      data::BruteForceKnn(f.ds.base, f.ds.queries, 10);
  EXPECT_DOUBLE_EQ(data::MeanRecallAtK(ResultIds(batch), truth, 10), 1.0);
}

TEST(BatchTest, ResultRowsAlignWithQueriesRegardlessOfThreadCount) {
  // The atomic cursor hands queries to arbitrary workers; row q must still
  // be the answer for query q.
  BatchFixture& f = Fixture();
  FlatIndex flat(f.ds.base);
  BatchOptions serial;
  serial.num_threads = 1;
  BatchOptions parallel;
  parallel.num_threads = 4;
  BatchResult a = BatchSearchFlat(flat, f.ExactFactory(), f.ds.queries, 5,
                                  serial);
  BatchResult b = BatchSearchFlat(flat, f.ExactFactory(), f.ds.queries, 5,
                                  parallel);
  ASSERT_EQ(a.results.size(), b.results.size());
  for (std::size_t q = 0; q < a.results.size(); ++q) {
    ASSERT_EQ(a.results[q].size(), b.results[q].size());
    for (std::size_t r = 0; r < a.results[q].size(); ++r) {
      EXPECT_EQ(a.results[q][r].id, b.results[q][r].id);
    }
  }
}

TEST(BatchTest, HnswBatchReachesRecallFloor) {
  BatchFixture& f = Fixture();
  BatchResult batch = BatchSearchHnsw(f.hnsw, f.ExactFactory(),
                                      f.ds.queries, 10, /*ef=*/100);
  std::vector<std::vector<int64_t>> truth =
      data::BruteForceKnn(f.ds.base, f.ds.queries, 10);
  EXPECT_GE(data::MeanRecallAtK(ResultIds(batch), truth, 10), 0.9);
}

TEST(BatchTest, IvfBatchReachesRecallFloor) {
  BatchFixture& f = Fixture();
  BatchResult batch = BatchSearchIvf(f.ivf, f.ExactFactory(), f.ds.queries,
                                     10, /*nprobe=*/8);
  std::vector<std::vector<int64_t>> truth =
      data::BruteForceKnn(f.ds.base, f.ds.queries, 10);
  EXPECT_GE(data::MeanRecallAtK(ResultIds(batch), truth, 10), 0.8);
}

TEST(BatchTest, LatencyHistogramCoversEveryQuery) {
  BatchFixture& f = Fixture();
  BatchResult batch = BatchSearchHnsw(f.hnsw, f.ExactFactory(),
                                      f.ds.queries, 10, /*ef=*/50);
  EXPECT_EQ(batch.latency_seconds.count(), f.ds.queries.rows());
  EXPECT_GT(batch.latency_seconds.max(), 0.0);
  EXPECT_GT(batch.wall_seconds, 0.0);
  EXPECT_GT(batch.Qps(), 0.0);
}

TEST(BatchTest, WorkerUtilizationReported) {
  BatchFixture& f = Fixture();
  BatchOptions options;
  options.num_threads = 3;
  BatchResult batch = BatchSearchFlat(FlatIndex(f.ds.base),
                                      f.ExactFactory(), f.ds.queries, 10,
                                      options);
  ASSERT_EQ(batch.worker_busy_seconds.size(), 3u);
  for (double busy : batch.worker_busy_seconds) {
    EXPECT_GE(busy, 0.0);
    // A worker can never be busier than the batch's wall time (small
    // epsilon for timer granularity between the two clocks).
    EXPECT_LE(busy, batch.wall_seconds * 1.001 + 1e-6);
  }
  EXPECT_GT(batch.AvgUtilization(), 0.0);
  EXPECT_LE(batch.AvgUtilization(), 1.001);
  EXPECT_GE(batch.MinUtilization(), 0.0);
  EXPECT_LE(batch.MinUtilization(), batch.AvgUtilization() + 1e-9);
}

TEST(BatchTest, UtilizationEmptyForEmptyBatch) {
  BatchFixture& f = Fixture();
  linalg::Matrix none(0, 24);
  BatchResult batch =
      BatchSearchFlat(FlatIndex(f.ds.base), f.ExactFactory(), none, 10);
  EXPECT_TRUE(batch.worker_busy_seconds.empty());
  EXPECT_EQ(batch.AvgUtilization(), 0.0);
  EXPECT_EQ(batch.MinUtilization(), 0.0);
}

TEST(BatchTest, ComputerStatsPlusEqualsSumsEveryCounter) {
  // RunBatch and the bench mergers aggregate through operator+= so that a
  // counter added to ComputerStats cannot be silently dropped from batch
  // aggregates. Two guards: every current field must be summed, and the
  // static_assert below forces whoever grows the struct to revisit
  // operator+= (and then this test).
  static_assert(sizeof(ComputerStats) == 4 * sizeof(int64_t),
                "ComputerStats gained a field: update operator+= and the "
                "field checks in this test");
  ComputerStats a;
  a.candidates = 1;
  a.pruned = 2;
  a.dims_scanned = 3;
  a.exact_computations = 4;
  ComputerStats b;
  b.candidates = 10;
  b.pruned = 20;
  b.dims_scanned = 30;
  b.exact_computations = 40;
  a += b;
  EXPECT_EQ(a.candidates, 11);
  EXPECT_EQ(a.pruned, 22);
  EXPECT_EQ(a.dims_scanned, 33);
  EXPECT_EQ(a.exact_computations, 44);
  // += returns *this, so merges chain.
  ComputerStats c;
  (c += a) += b;
  EXPECT_EQ(c.candidates, 21);
  EXPECT_EQ(c.exact_computations, 84);
}

TEST(BatchTest, StatsAggregateAcrossWorkers) {
  BatchFixture& f = Fixture();
  BatchOptions options;
  options.num_threads = 3;
  BatchResult batch = BatchSearchFlat(FlatIndex(f.ds.base),
                                      f.ExactFactory(), f.ds.queries, 10,
                                      options);
  // The exact computer counts one candidate per base point per query.
  EXPECT_EQ(batch.stats.candidates,
            f.ds.size() * f.ds.queries.rows());
}

TEST(BatchTest, EmptyQueriesReturnEmptyBatch) {
  BatchFixture& f = Fixture();
  linalg::Matrix none(0, 24);
  BatchResult batch =
      BatchSearchFlat(FlatIndex(f.ds.base), f.ExactFactory(), none, 10);
  EXPECT_TRUE(batch.results.empty());
  EXPECT_EQ(batch.latency_seconds.count(), 0);
  EXPECT_EQ(batch.Qps(), 0.0);
}

TEST(BatchTest, ThrowingSearchPropagatesWithoutKillingPool) {
  // A search callback that throws must not std::terminate the worker pool
  // (an exception escaping a std::thread body would). The first exception
  // is rethrown on the caller thread after every worker drains.
  BatchFixture& f = Fixture();
  BatchOptions options;
  options.num_threads = 4;
  std::atomic<int> calls{0};
  SearchFn throwing = [&](DistanceComputer& computer,
                          const float* query) -> std::vector<Neighbor> {
    if (calls.fetch_add(1) == 5) {
      throw std::runtime_error("injected search failure");
    }
    return FlatIndex(f.ds.base).Search(computer, query, 3);
  };
  EXPECT_THROW(
      {
        RunBatch(f.ExactFactory(), f.ds.queries, throwing, options);
      },
      std::runtime_error);
  // Every worker drained and joined; the process is intact and a fresh
  // batch over the same queries completes normally.
  SearchFn healthy = [&](DistanceComputer& computer,
                         const float* query) -> std::vector<Neighbor> {
    return FlatIndex(f.ds.base).Search(computer, query, 3);
  };
  BatchResult batch =
      RunBatch(f.ExactFactory(), f.ds.queries, healthy, options);
  ASSERT_EQ(batch.results.size(),
            static_cast<std::size_t>(f.ds.queries.rows()));
  for (const auto& r : batch.results) EXPECT_EQ(r.size(), 3u);
}

TEST(BatchTest, ThrowingGroupSearchReportsFirstException) {
  // Grouped path: the winner's exception surfaces; losers keep draining
  // the cursor so no thread blocks.
  BatchFixture& f = Fixture();
  BatchOptions options;
  options.num_threads = 4;
  options.group_size = 4;
  GroupSearchFn throwing = [&](DistanceComputer&, const linalg::Matrix&,
                               int64_t begin, int64_t,
                               std::vector<Neighbor>*) {
    throw std::invalid_argument("group " + std::to_string(begin));
  };
  try {
    RunBatchGrouped(f.ExactFactory(), f.ds.queries, throwing, options);
    FAIL() << "expected the injected exception to propagate";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("group "), std::string::npos);
  }
}

TEST(BatchTest, ThreadCountExceedingQueriesIsClamped) {
  BatchFixture& f = Fixture();
  linalg::Matrix two(2, 24);
  std::copy(f.ds.queries.Row(0), f.ds.queries.Row(0) + 24, two.Row(0));
  std::copy(f.ds.queries.Row(1), f.ds.queries.Row(1) + 24, two.Row(1));
  BatchOptions options;
  options.num_threads = 16;
  BatchResult batch = BatchSearchFlat(FlatIndex(f.ds.base),
                                      f.ExactFactory(), two, 3, options);
  EXPECT_EQ(batch.results.size(), 2u);
  EXPECT_EQ(batch.latency_seconds.count(), 2);
}

}  // namespace
}  // namespace resinfer::index

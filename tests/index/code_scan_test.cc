// Code-resident scan conformance: for every computer with a code-resident
// form, EstimateBatchCodes over a bucket-contiguous record stream must be
// BIT-IDENTICAL to the id-gather path — same prune decisions, same
// distances, same ComputerStats — on randomized buckets (duplicates,
// out-of-order ids) including non-multiple-of-4 tails, across SIMD levels.
// Also covers the IvfIndex plumbing: a search through an attached CodeStore
// returns exactly the gather search's results, and mismatched tags fall
// back to the gather path instead of misreading records.
#include <algorithm>
#include <cmath>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/ddc_any.h"
#include "core/ddc_opq.h"
#include "core/ddc_pca.h"
#include "core/ddc_res.h"
#include "core/ddc_rq_cascade.h"
#include "index/distance_computer.h"
#include "index/ivf_index.h"
#include "quant/code_store.h"
#include "simd/dispatch.h"
#include "test_util.h"

namespace resinfer::index {
namespace {

struct CodeScanFixture {
  data::Dataset ds = testing::SmallDataset(1100, 32, 1.0, 57, 6, 160);

  core::PqEstimatorData pq;
  core::RqEstimatorData rq;
  core::SqEstimatorData sq;
  core::LinearCorrector pq_corrector, rq_corrector, sq_corrector;

  linalg::PcaModel pca;
  linalg::Matrix rotated;
  core::DdcPcaArtifacts pca_artifacts;
  core::DdcOpqArtifacts opq_artifacts;
  core::DdcRqCascadeArtifacts cascade_artifacts;

  CodeScanFixture() {
    quant::PqOptions pq_options;
    pq_options.num_subspaces = 8;
    pq_options.nbits = 6;
    pq = core::BuildPqEstimatorData(ds.base, pq_options);
    quant::RqOptions rq_options;
    rq_options.num_stages = 4;
    rq_options.nbits = 6;
    rq = core::BuildRqEstimatorData(ds.base, rq_options);
    sq = core::BuildSqEstimatorData(ds.base);

    core::TrainingDataOptions training;
    training.max_queries = 60;
    {
      core::PqAdcEstimator estimator(&pq);
      pq_corrector = core::TrainAnyCorrector(estimator, ds.base,
                                             ds.train_queries, training);
    }
    {
      core::RqAdcEstimator estimator(&rq);
      rq_corrector = core::TrainAnyCorrector(estimator, ds.base,
                                             ds.train_queries, training);
    }
    {
      core::SqAdcEstimator estimator(&sq);
      sq_corrector = core::TrainAnyCorrector(estimator, ds.base,
                                             ds.train_queries, training);
    }

    pca = linalg::PcaModel::Fit(ds.base.data(), ds.size(), ds.dim());
    rotated = pca.TransformBatch(ds.base.data(), ds.size());
    core::DdcPcaOptions pca_options;
    pca_options.init_dim = 8;
    pca_options.delta_dim = 16;
    pca_options.training.max_queries = 60;
    pca_artifacts = core::TrainDdcPca(pca, rotated, ds.base,
                                      ds.train_queries, pca_options);

    core::DdcOpqOptions opq_options;
    opq_options.training.max_queries = 60;
    opq_artifacts = core::TrainDdcOpq(ds.base, ds.train_queries, opq_options);

    core::DdcRqCascadeOptions cascade_options;
    cascade_options.levels = {1, 3};
    cascade_options.rq.num_stages = 3;
    cascade_options.rq.nbits = 6;
    cascade_options.training.max_queries = 60;
    cascade_artifacts =
        core::TrainDdcRqCascade(ds.base, ds.train_queries, cascade_options);
  }

  using ComputerFactory = std::function<std::unique_ptr<DistanceComputer>()>;

  // Every computer with a code-resident form, plus a factory so the
  // sequential reference and the code-scan run use independent instances.
  std::vector<std::pair<std::string, ComputerFactory>> Factories() {
    std::vector<std::pair<std::string, ComputerFactory>> factories;
    factories.emplace_back("ddc-pq", [this] {
      return std::make_unique<core::DdcAnyComputer>(
          &ds.base, std::make_unique<core::PqAdcEstimator>(&pq),
          &pq_corrector);
    });
    factories.emplace_back("ddc-rq", [this] {
      return std::make_unique<core::DdcAnyComputer>(
          &ds.base, std::make_unique<core::RqAdcEstimator>(&rq),
          &rq_corrector);
    });
    factories.emplace_back("ddc-sq", [this] {
      return std::make_unique<core::DdcAnyComputer>(
          &ds.base, std::make_unique<core::SqAdcEstimator>(&sq),
          &sq_corrector);
    });
    factories.emplace_back("ddc-opq", [this] {
      return std::make_unique<core::DdcOpqComputer>(&ds.base,
                                                    &opq_artifacts);
    });
    factories.emplace_back("ddc-pca", [this] {
      return std::make_unique<core::DdcPcaComputer>(&pca, &rotated,
                                                    &pca_artifacts);
    });
    factories.emplace_back("ddc-res", [this] {
      core::DdcResOptions options;
      options.init_dim = 8;
      options.delta_dim = 8;
      return std::make_unique<core::DdcResComputer>(&pca, &rotated, options);
    });
    factories.emplace_back("ddc-rq-cascade", [this] {
      return std::make_unique<core::DdcRqCascadeComputer>(
          &ds.base, &cascade_artifacts);
    });
    return factories;
  }
};

CodeScanFixture& Fixture() {
  static CodeScanFixture* fixture = new CodeScanFixture();
  return *fixture;
}

// A randomized "bucket": out-of-order, with duplicates.
std::vector<int64_t> RandomBucket(int count, int64_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<int64_t> ids(static_cast<std::size_t>(count));
  for (auto& id : ids) {
    id = static_cast<int64_t>(rng.Uniform() * static_cast<double>(n - 1));
  }
  return ids;
}

void ExpectCodeScanMatchesGather(DistanceComputer& gather,
                                 DistanceComputer& streamed,
                                 const quant::CodeStore& store,
                                 const float* query,
                                 const std::vector<int64_t>& ids, float tau,
                                 const std::string& label) {
  // Bucket-contiguous records for exactly these candidates, in order.
  quant::CodeStore bucket = store.PermutedBy(ids);

  gather.BeginQuery(query);
  streamed.BeginQuery(query);
  gather.stats().Reset();
  streamed.stats().Reset();

  std::vector<EstimateResult> want(ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    want[i] = gather.EstimateWithThreshold(ids[i], tau);
  }
  std::vector<EstimateResult> got(ids.size());
  streamed.EstimateBatchCodes(bucket.data(), ids.data(),
                              static_cast<int>(ids.size()), tau, got.data());

  for (std::size_t i = 0; i < ids.size(); ++i) {
    ASSERT_EQ(want[i].pruned, got[i].pruned)
        << label << " count=" << ids.size() << " tau=" << tau << " i=" << i;
    // Bit-identical, not just close.
    ASSERT_EQ(want[i].distance, got[i].distance)
        << label << " count=" << ids.size() << " tau=" << tau << " i=" << i;
  }
  const ComputerStats& a = gather.stats();
  const ComputerStats& b = streamed.stats();
  EXPECT_EQ(a.candidates, b.candidates) << label;
  EXPECT_EQ(a.pruned, b.pruned) << label;
  EXPECT_EQ(a.dims_scanned, b.dims_scanned) << label;
  EXPECT_EQ(a.exact_computations, b.exact_computations) << label;
}

TEST(CodeScanTest, StoreLayoutMatchesComputerContract) {
  CodeScanFixture& f = Fixture();
  for (auto& [name, factory] : f.Factories()) {
    auto computer = factory();
    ASSERT_FALSE(computer->code_tag().empty()) << name;
    quant::CodeStore store = computer->MakeCodeStore();
    ASSERT_FALSE(store.empty()) << name;
    EXPECT_EQ(store.tag(), computer->code_tag()) << name;
    EXPECT_EQ(store.size(), computer->size()) << name;
  }
}

TEST(CodeScanTest, BitIdenticalToGatherAcrossComputersAndLevels) {
  CodeScanFixture& f = Fixture();

  const std::vector<simd::SimdLevel> levels = simd::SupportedLevels();

  for (auto& [name, factory] : f.Factories()) {
    auto gather = factory();
    auto streamed = factory();
    quant::CodeStore store = streamed->MakeCodeStore();
    for (simd::SimdLevel level : levels) {
      simd::ScopedSimdLevel guard(level);
      for (int64_t q = 0; q < f.ds.queries.rows(); ++q) {
        const float* query = f.ds.queries.Row(q);
        FlatDistanceComputer exact(f.ds.base.data(), f.ds.size(),
                                   f.ds.dim());
        exact.BeginQuery(query);
        const float mid_tau = exact.ExactDistance(q * 7 + 3);
        for (float tau : {kInfDistance, 0.0f, mid_tau}) {
          // Bucket sizes straddling the 4-wide kernel groups and the
          // 16/32-candidate chunks, most with a non-multiple-of-4 tail.
          for (int count : {1, 2, 3, 4, 5, 7, 15, 31, 33, 64, 129}) {
            ExpectCodeScanMatchesGather(
                *gather, *streamed, store, query,
                RandomBucket(count, f.ds.size(),
                             static_cast<uint64_t>(q * 1000 + count)),
                tau, name + "/" + simd::SimdLevelName(level));
          }
        }
      }
    }
  }
}

TEST(CodeScanTest, IvfSearchWithAttachedCodesMatchesGatherSearch) {
  CodeScanFixture& f = Fixture();
  IvfOptions options;
  options.num_clusters = 24;
  IvfIndex plain = IvfIndex::Build(f.ds.base, options);

  for (auto& [name, factory] : f.Factories()) {
    auto gather_computer = factory();
    auto code_computer = factory();

    IvfIndex coded = IvfIndex::Build(f.ds.base, options);
    ASSERT_TRUE(coded.AttachCodesFrom(*code_computer)) << name;
    ASSERT_TRUE(coded.has_codes());
    EXPECT_EQ(coded.codes().size(), coded.size());
    EXPECT_EQ(coded.codes().tag(), code_computer->code_tag());

    for (int64_t q = 0; q < f.ds.queries.rows(); ++q) {
      auto want = plain.Search(*gather_computer, f.ds.queries.Row(q),
                               /*k=*/10, /*nprobe=*/6);
      auto got = coded.Search(*code_computer, f.ds.queries.Row(q),
                              /*k=*/10, /*nprobe=*/6);
      ASSERT_EQ(want.size(), got.size()) << name;
      for (std::size_t i = 0; i < want.size(); ++i) {
        EXPECT_EQ(want[i].id, got[i].id) << name << " q=" << q;
        EXPECT_EQ(want[i].distance, got[i].distance) << name << " q=" << q;
      }
    }
    // The whole sweep must advance stats identically too.
    EXPECT_EQ(gather_computer->stats().candidates,
              code_computer->stats().candidates)
        << name;
    EXPECT_EQ(gather_computer->stats().pruned, code_computer->stats().pruned)
        << name;
    EXPECT_EQ(gather_computer->stats().dims_scanned,
              code_computer->stats().dims_scanned)
        << name;
    EXPECT_EQ(gather_computer->stats().exact_computations,
              code_computer->stats().exact_computations)
        << name;
  }
}

TEST(CodeScanTest, TagFingerprintsContentNotJustLayout) {
  // Same method, same shapes, byte-different artifacts (a retrained model)
  // must produce a different tag, so a stale attached/persisted store
  // falls back to the gather path instead of being streamed as current.
  CodeScanFixture& f = Fixture();
  core::SqEstimatorData modified = f.sq;
  modified.recon_errors[0] += 1.0f;
  core::SqAdcEstimator current(&f.sq);
  core::SqAdcEstimator retrained(&modified);
  EXPECT_NE(current.code_tag(), retrained.code_tag());
  // And stable across instances over the same data.
  core::SqAdcEstimator again(&f.sq);
  EXPECT_EQ(current.code_tag(), again.code_tag());
}

TEST(CodeScanTest, MismatchedTagFallsBackToGather) {
  CodeScanFixture& f = Fixture();
  IvfOptions options;
  options.num_clusters = 16;

  // Attach a ddc-pq store, then search with a ddc-sq computer: tags differ,
  // so the index must take the gather path (and still be correct).
  auto pq_computer = std::make_unique<core::DdcAnyComputer>(
      &f.ds.base, std::make_unique<core::PqAdcEstimator>(&f.pq),
      &f.pq_corrector);
  IvfIndex ivf = IvfIndex::Build(f.ds.base, options);
  ASSERT_TRUE(ivf.AttachCodesFrom(*pq_computer));

  auto sq_computer = std::make_unique<core::DdcAnyComputer>(
      &f.ds.base, std::make_unique<core::SqAdcEstimator>(&f.sq),
      &f.sq_corrector);
  auto sq_reference = std::make_unique<core::DdcAnyComputer>(
      &f.ds.base, std::make_unique<core::SqAdcEstimator>(&f.sq),
      &f.sq_corrector);
  IvfIndex plain = IvfIndex::Build(f.ds.base, options);

  ASSERT_NE(ivf.codes().tag(), sq_computer->code_tag());
  auto got = ivf.Search(*sq_computer, f.ds.queries.Row(0), 10, 4);
  auto want = plain.Search(*sq_reference, f.ds.queries.Row(0), 10, 4);
  ASSERT_EQ(want.size(), got.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(want[i].id, got[i].id);
    EXPECT_EQ(want[i].distance, got[i].distance);
  }
}

TEST(CodeScanTest, DefaultEstimateBatchCodesIgnoresStreamAndGathers) {
  // Computers without code support (flat here, HNSW's exact path in
  // general) keep working through the base-class fallback.
  CodeScanFixture& f = Fixture();
  FlatDistanceComputer computer(f.ds.base.data(), f.ds.size(), f.ds.dim());
  EXPECT_TRUE(computer.code_tag().empty());
  EXPECT_TRUE(computer.MakeCodeStore().empty());

  computer.BeginQuery(f.ds.queries.Row(0));
  int64_t ids[3] = {4, 9, 2};
  EstimateResult out[3];
  computer.EstimateBatchCodes(/*codes=*/nullptr, ids, 3, kInfDistance, out);
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(out[i].pruned);
    EXPECT_EQ(out[i].distance, computer.ExactDistance(ids[i]));
  }
}

}  // namespace
}  // namespace resinfer::index

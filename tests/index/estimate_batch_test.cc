// Batch-protocol conformance: for every computer that overrides
// EstimateBatch, a blocked call must be BIT-IDENTICAL to the sequential
// EstimateWithThreshold loop at the same SIMD level — same prune decisions,
// same distances, same ComputerStats — across odd block sizes and taus that
// straddle the pruned/not-pruned boundary (see the contract in
// distance_computer.h).
#include <algorithm>
#include <cmath>
#include <functional>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/ddc_any.h"
#include "core/ddc_opq.h"
#include "core/ddc_pca.h"
#include "core/ddc_res.h"
#include "index/distance_computer.h"
#include "simd/dispatch.h"
#include "test_util.h"

namespace resinfer::index {
namespace {

struct BatchFixture {
  data::Dataset ds = testing::SmallDataset(1200, 32, 1.0, 91, 8, 200);

  core::PqEstimatorData pq;
  core::RqEstimatorData rq;
  core::SqEstimatorData sq;
  core::LinearCorrector pq_corrector, rq_corrector, sq_corrector;

  linalg::PcaModel pca;
  linalg::Matrix rotated;
  core::DdcPcaArtifacts pca_artifacts;

  core::DdcOpqArtifacts opq_artifacts;

  BatchFixture() {
    quant::PqOptions pq_options;
    pq_options.num_subspaces = 8;
    pq_options.nbits = 6;
    pq = core::BuildPqEstimatorData(ds.base, pq_options);
    quant::RqOptions rq_options;
    rq_options.num_stages = 4;
    rq_options.nbits = 6;
    rq = core::BuildRqEstimatorData(ds.base, rq_options);
    sq = core::BuildSqEstimatorData(ds.base);

    core::TrainingDataOptions training;
    training.max_queries = 80;
    {
      core::PqAdcEstimator estimator(&pq);
      pq_corrector = core::TrainAnyCorrector(estimator, ds.base,
                                             ds.train_queries, training);
    }
    {
      core::RqAdcEstimator estimator(&rq);
      rq_corrector = core::TrainAnyCorrector(estimator, ds.base,
                                             ds.train_queries, training);
    }
    {
      core::SqAdcEstimator estimator(&sq);
      sq_corrector = core::TrainAnyCorrector(estimator, ds.base,
                                             ds.train_queries, training);
    }

    pca = linalg::PcaModel::Fit(ds.base.data(), ds.size(), ds.dim());
    rotated = pca.TransformBatch(ds.base.data(), ds.size());
    core::DdcPcaOptions pca_options;
    pca_options.init_dim = 8;
    pca_options.delta_dim = 16;
    pca_options.training.max_queries = 80;
    pca_artifacts =
        core::TrainDdcPca(pca, rotated, ds.base, ds.train_queries,
                          pca_options);

    core::DdcOpqOptions opq_options;
    opq_options.training.max_queries = 80;
    opq_artifacts = core::TrainDdcOpq(ds.base, ds.train_queries, opq_options);
  }

  using ComputerFactory =
      std::function<std::unique_ptr<DistanceComputer>()>;

  // One factory per overriding computer; fresh instances keep the
  // sequential reference and the batch run independent.
  std::vector<std::pair<std::string, ComputerFactory>> Factories() {
    std::vector<std::pair<std::string, ComputerFactory>> factories;
    factories.emplace_back("flat", [this] {
      return std::make_unique<FlatDistanceComputer>(ds.base.data(),
                                                    ds.size(), ds.dim());
    });
    factories.emplace_back("ddc-pq", [this] {
      return std::make_unique<core::DdcAnyComputer>(
          &ds.base, std::make_unique<core::PqAdcEstimator>(&pq),
          &pq_corrector);
    });
    factories.emplace_back("ddc-rq", [this] {
      return std::make_unique<core::DdcAnyComputer>(
          &ds.base, std::make_unique<core::RqAdcEstimator>(&rq),
          &rq_corrector);
    });
    factories.emplace_back("ddc-sq", [this] {
      return std::make_unique<core::DdcAnyComputer>(
          &ds.base, std::make_unique<core::SqAdcEstimator>(&sq),
          &sq_corrector);
    });
    factories.emplace_back("ddc-pca", [this] {
      return std::make_unique<core::DdcPcaComputer>(&pca, &rotated,
                                                    &pca_artifacts);
    });
    factories.emplace_back("ddc-res", [this] {
      core::DdcResOptions options;
      options.init_dim = 8;
      options.delta_dim = 8;
      return std::make_unique<core::DdcResComputer>(&pca, &rotated, options);
    });
    factories.emplace_back("ddc-opq", [this] {
      return std::make_unique<core::DdcOpqComputer>(&ds.base,
                                                    &opq_artifacts);
    });
    return factories;
  }
};

// Trainers dominate runtime; build the shared artifacts once.
BatchFixture& Fixture() {
  static BatchFixture* fixture = new BatchFixture();
  return *fixture;
}

void ExpectBatchMatchesSequential(DistanceComputer& sequential,
                                  DistanceComputer& batched,
                                  const float* query,
                                  const std::vector<int64_t>& ids, float tau,
                                  int block_size, const std::string& label) {
  sequential.BeginQuery(query);
  batched.BeginQuery(query);
  sequential.stats().Reset();
  batched.stats().Reset();

  std::vector<EstimateResult> want(ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    want[i] = sequential.EstimateWithThreshold(ids[i], tau);
  }
  std::vector<EstimateResult> got(ids.size());
  const int count = static_cast<int>(ids.size());
  for (int pos = 0; pos < count; pos += block_size) {
    batched.EstimateBatch(ids.data() + pos,
                          std::min(block_size, count - pos), tau,
                          got.data() + pos);
  }

  for (std::size_t i = 0; i < ids.size(); ++i) {
    ASSERT_EQ(want[i].pruned, got[i].pruned)
        << label << " block=" << block_size << " tau=" << tau << " i=" << i;
    // Bit-identical, not just close.
    ASSERT_EQ(want[i].distance, got[i].distance)
        << label << " block=" << block_size << " tau=" << tau << " i=" << i;
  }

  const ComputerStats& a = sequential.stats();
  const ComputerStats& b = batched.stats();
  EXPECT_EQ(a.candidates, b.candidates) << label;
  EXPECT_EQ(a.pruned, b.pruned) << label;
  EXPECT_EQ(a.dims_scanned, b.dims_scanned) << label;
  EXPECT_EQ(a.exact_computations, b.exact_computations) << label;
}

TEST(EstimateBatchTest, BitIdenticalToSequentialAcrossComputersAndLevels) {
  BatchFixture& f = Fixture();

  std::vector<int64_t> ids(256);
  std::iota(ids.begin(), ids.end(), int64_t{0});
  // Mix in out-of-order, repeated ids — bucket scans are ordered but graph
  // blocks are not.
  Rng rng(11);
  for (std::size_t i = 0; i < ids.size(); i += 3) {
    ids[i] = static_cast<int64_t>(rng.Uniform() * (f.ds.size() - 1));
  }

  const std::vector<simd::SimdLevel> levels = simd::SupportedLevels();

  for (auto& [name, factory] : f.Factories()) {
    auto sequential = factory();
    auto batched = factory();
    for (simd::SimdLevel level : levels) {
      simd::ScopedSimdLevel guard(level);
      for (int64_t q = 0; q < f.ds.queries.rows(); ++q) {
        const float* query = f.ds.queries.Row(q);
        // tau sweep: +inf (nothing prunable), 0 (everything prunable),
        // and a mid-range exact distance so the block straddles the
        // pruned/not-pruned boundary.
        FlatDistanceComputer exact(f.ds.base.data(), f.ds.size(),
                                   f.ds.dim());
        exact.BeginQuery(query);
        const float mid_tau = exact.ExactDistance(ids[ids.size() / 2]);
        for (float tau : {kInfDistance, 0.0f, mid_tau}) {
          for (int block_size : {1, 3, 4, 5, 7, 16, 33, 256}) {
            ExpectBatchMatchesSequential(
                *sequential, *batched, query, ids, tau, block_size,
                name + "/" + simd::SimdLevelName(level));
          }
        }
      }
    }
  }
}

TEST(EstimateBatchTest, DefaultImplementationLoopsSequentially) {
  // A computer without an override must still satisfy the contract via the
  // base-class loop.
  BatchFixture& f = Fixture();
  FlatDistanceComputer computer(f.ds.base.data(), f.ds.size(), f.ds.dim());
  computer.BeginQuery(f.ds.queries.Row(0));
  int64_t ids[3] = {1, 5, 9};
  EstimateResult out[3];
  computer.DistanceComputer::EstimateBatch(ids, 3, kInfDistance, out);
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(out[i].pruned);
    EXPECT_EQ(out[i].distance, computer.ExactDistance(ids[i]));
  }
}

TEST(EstimateBatchTest, SingleCandidateBlockMatchesSingleCall) {
  BatchFixture& f = Fixture();
  for (auto& [name, factory] : f.Factories()) {
    auto a = factory();
    auto b = factory();
    a->BeginQuery(f.ds.queries.Row(1));
    b->BeginQuery(f.ds.queries.Row(1));
    const int64_t id = 17;
    EstimateResult single = a->EstimateWithThreshold(id, kInfDistance);
    EstimateResult block;
    b->EstimateBatch(&id, 1, kInfDistance, &block);
    EXPECT_EQ(single.pruned, block.pruned) << name;
    EXPECT_EQ(single.distance, block.distance) << name;
  }
}

}  // namespace
}  // namespace resinfer::index

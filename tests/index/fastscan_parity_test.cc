// Packed 4-bit fast-scan conformance (ctest label: fastscan-parity).
//
// The packed tier replaces the float-ADC gather path with quantized-LUT
// accumulation (simd::PqAdcFastScan) plus an exact-rescore epilogue. Its
// contracts, asserted here:
//   * layout honesty — code_size() is the true packed byte count, and
//     packed encode/decode round-trips agree with a byte-per-code codebook
//     built from the same centroid tables;
//   * the quantized estimate stays within the documented m * scale / 2
//     bound of the float ADC distance, with tail LUT entries zero-filled
//     even when a small training set clamps ksub below 16;
//   * scalar and AVX2 kernels return identical u16 sums (integer
//     accumulation is exact), for every count/m shape including
//     non-multiple-of-32 tails and odd m;
//   * every estimate path — sequential, batch, code-resident, grouped —
//     is bit-identical to the others at the same SIMD level (the ADC
//     table construction itself is level-dependent float arithmetic, like
//     every other estimator), so IVF searches agree between the gather
//     and code-resident routes, including buckets that are empty.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "core/ddc_any.h"
#include "core/ddc_opq.h"
#include "data/ground_truth.h"
#include "data/metrics.h"
#include "index/distance_computer.h"
#include "index/ivf_index.h"
#include "quant/code_layout.h"
#include "quant/code_store.h"
#include "quant/pq.h"
#include "quant/rq.h"
#include "simd/dispatch.h"
#include "simd/kernels.h"
#include "test_util.h"
#include "util/rng.h"

namespace resinfer::index {
namespace {

std::vector<simd::SimdLevel> LevelsToTest() { return simd::SupportedLevels(); }

TEST(FastScanParityTest, PackUnpackRoundTripAndLayoutMath) {
  Rng rng(11);
  for (int m : {1, 2, 3, 4, 7, 8, 15, 32, 33}) {
    const quant::CodeLayout packed = quant::CodeLayout::ForBits(4);
    EXPECT_TRUE(packed.packed());
    EXPECT_EQ(packed.CodeBytes(m), (m + 1) / 2);
    EXPECT_EQ(quant::CodeLayout::ForBits(5).CodeBytes(m), m);

    std::vector<uint8_t> nibbles(m), out(m);
    for (auto& v : nibbles) v = static_cast<uint8_t>(rng.UniformInt(16));
    std::vector<uint8_t> code(static_cast<std::size_t>((m + 1) / 2), 0xff);
    quant::PackCodes4(nibbles.data(), m, code.data());
    quant::UnpackCodes4(code.data(), m, out.data());
    EXPECT_EQ(nibbles, out) << "m=" << m;
    if (m % 2 == 1) {
      EXPECT_EQ(code.back() >> 4, 0) << "pad nibble must be zero, m=" << m;
    }
    for (int s = 0; s < m; ++s) {
      EXPECT_EQ(quant::CodeAt(code.data(), s, packed), nibbles[s]);
    }
    // SetCodeAt preserves the shared byte's other nibble.
    std::vector<uint8_t> rewritten(code);
    for (int s = 0; s < m; ++s) {
      quant::SetCodeAt(rewritten.data(), s, nibbles[s], packed);
    }
    EXPECT_EQ(rewritten, code);
  }
}

TEST(FastScanParityTest, HonestCodeSize) {
  data::Dataset ds = testing::SmallDataset(600, 32, 1.0, 91, 4, 50);
  for (int nbits : {3, 4, 5, 6, 8}) {
    quant::PqOptions options;
    options.num_subspaces = 8;
    options.nbits = nbits;
    quant::PqCodebook pq =
        quant::PqCodebook::Train(ds.base.data(), ds.size(), 32, options);
    const int64_t want = nbits <= 4 ? 4 : 8;
    EXPECT_EQ(pq.code_size(), want) << "nbits=" << nbits;
    EXPECT_EQ(pq.layout().packed(), nbits <= 4);
    std::vector<uint8_t> codes = pq.EncodeBatch(ds.base.data(), 40);
    EXPECT_EQ(static_cast<int64_t>(codes.size()), 40 * pq.code_size());

    quant::RqOptions rq_options;
    rq_options.num_stages = 3;
    rq_options.nbits = nbits;
    quant::RqCodebook rq =
        quant::RqCodebook::Train(ds.base.data(), ds.size(), 32, rq_options);
    EXPECT_EQ(rq.code_size(), nbits <= 4 ? 2 : 3) << "nbits=" << nbits;
  }
}

TEST(FastScanParityTest, PackedEncodeMatchesByteLayoutSemantics) {
  data::Dataset ds = testing::SmallDataset(800, 32, 1.0, 92, 4, 50);
  quant::PqOptions options;
  options.num_subspaces = 8;
  options.nbits = 4;
  quant::PqCodebook packed =
      quant::PqCodebook::Train(ds.base.data(), ds.size(), 32, options);
  ASSERT_TRUE(packed.layout().packed());

  // Byte-per-code codebook over the SAME centroid tables (the legacy
  // layout a pre-fix nbits=4 file would load as).
  std::vector<linalg::Matrix> tables;
  for (int s = 0; s < packed.num_subspaces(); ++s) {
    const linalg::Matrix& src = packed.centroids(s);
    linalg::Matrix copy(src.rows(), src.cols());
    std::copy(src.data(), src.data() + src.size(), copy.data());
    tables.push_back(std::move(copy));
  }
  quant::PqCodebook bytes = quant::PqCodebook::FromCodebooks(
      std::move(tables), quant::CodeLayout{4, quant::CodePacking::kBytePerCode});
  EXPECT_EQ(bytes.code_size(), 8);
  EXPECT_EQ(packed.code_size(), 4);

  std::vector<uint8_t> pcode(packed.code_size());
  std::vector<uint8_t> bcode(bytes.code_size());
  std::vector<float> pdec(32), bdec(32), table(packed.adc_table_size());
  for (int64_t i = 0; i < 50; ++i) {
    packed.Encode(ds.base.Row(i), pcode.data());
    bytes.Encode(ds.base.Row(i), bcode.data());
    for (int s = 0; s < packed.num_subspaces(); ++s) {
      EXPECT_EQ(packed.CodeAt(pcode.data(), s), bcode[s]) << i << "," << s;
    }
    packed.Decode(pcode.data(), pdec.data());
    bytes.Decode(bcode.data(), bdec.data());
    EXPECT_EQ(pdec, bdec);
    // Float ADC over the packed code equals the byte codebook's.
    packed.ComputeAdcTable(ds.queries.Row(0), table.data());
    EXPECT_EQ(packed.AdcDistance(table.data(), pcode.data()),
              bytes.AdcDistance(table.data(), bcode.data()));
  }
}

TEST(FastScanParityTest, QuantizedLutWithinDocumentedBound) {
  data::Dataset ds = testing::SmallDataset(1000, 32, 1.0, 93, 8, 50);
  quant::PqOptions options;
  options.num_subspaces = 8;
  options.nbits = 4;
  quant::PqCodebook pq =
      quant::PqCodebook::Train(ds.base.data(), ds.size(), 32, options);
  std::vector<uint8_t> codes = pq.EncodeBatch(ds.base.data(), ds.size());
  std::vector<float> table(pq.adc_table_size());
  std::vector<uint8_t> lut(pq.fast_scan_lut_bytes());
  float scale = 0.0f, bias = 0.0f;
  for (int64_t q = 0; q < ds.queries.rows(); ++q) {
    pq.ComputeAdcTable(ds.queries.Row(q), table.data());
    pq.QuantizeAdcTable(table.data(), lut.data(), &scale, &bias);
    const float bound = pq.FastScanErrorBound(scale);
    for (int64_t i = 0; i < ds.size(); i += 13) {
      const uint8_t* code = codes.data() + i * pq.code_size();
      const float exact = pq.AdcDistance(table.data(), code);
      const float quantized = quant::PqCodebook::DequantizeFastScanSum(
          simd::PqAdcFastScanOne(lut.data(), pq.num_subspaces(), code),
          scale, bias);
      // Small slack over the analytic bound for the float rounding of the
      // quantization/dequantization arithmetic itself.
      EXPECT_LE(std::abs(quantized - exact),
                bound + 1e-3f * (1.0f + std::abs(exact)))
          << "q=" << q << " i=" << i;
    }
  }
}

TEST(FastScanParityTest, SmallTrainingSetZeroFillsLutTail) {
  // ksub clamps to train_n = 9 < 16: the LUT's unused entries (and the
  // odd-m pad row) must be zero, not uninitialized memory.
  linalg::Matrix tiny = testing::RandomMatrix(9, 9, 94);
  quant::PqOptions options;
  options.num_subspaces = 3;  // odd m: exercises the pad row too
  options.nbits = 4;
  quant::PqCodebook pq = quant::PqCodebook::Train(tiny.data(), 9, 9, options);
  ASSERT_EQ(pq.num_centroids(), 9);
  ASSERT_TRUE(pq.layout().packed());
  ASSERT_EQ(pq.code_size(), 2);

  std::vector<float> table(pq.adc_table_size());
  std::vector<uint8_t> lut(pq.fast_scan_lut_bytes(), 0xab);
  float scale = 0.0f, bias = 0.0f;
  pq.ComputeAdcTable(tiny.Row(0), table.data());
  pq.QuantizeAdcTable(table.data(), lut.data(), &scale, &bias);
  for (int s = 0; s < pq.num_subspaces(); ++s) {
    for (int c = pq.num_centroids(); c < 16; ++c) {
      EXPECT_EQ(lut[s * 16 + c], 0) << "s=" << s << " c=" << c;
    }
  }
  // Pad row (sub-space m..) of the odd-m LUT.
  for (int64_t b = 3 * 16; b < pq.fast_scan_lut_bytes(); ++b) {
    EXPECT_EQ(lut[b], 0) << "pad byte " << b;
  }
}

TEST(FastScanParityTest, ScalarVsVectorSumsIdentical) {
#if !defined(RESINFER_HAVE_AVX2)
  GTEST_SKIP() << "AVX2 compiled out";
#else
  if (simd::BestSupportedLevel() < simd::SimdLevel::kAvx2) {
    GTEST_SKIP() << "host lacks AVX2";
  }
  Rng rng(95);
  for (int m : {1, 2, 3, 5, 8, 16, 31, 32, 33, 64}) {
    const int packed_size = (m + 1) / 2;
    std::vector<uint8_t> lut(static_cast<std::size_t>(packed_size) * 32, 0);
    for (int s = 0; s < m; ++s) {
      for (int c = 0; c < 16; ++c) {
        lut[s * 16 + c] = static_cast<uint8_t>(rng.UniformInt(256));
      }
    }
    for (int count : {1, 5, 8, 17, 31, 32, 33, 100}) {
      std::vector<uint8_t> storage(
          static_cast<std::size_t>(count) * packed_size);
      std::vector<const uint8_t*> codes(count);
      for (int c = 0; c < count; ++c) {
        uint8_t* row = storage.data() + c * packed_size;
        codes[c] = row;
        std::vector<uint8_t> nibbles(m);
        for (auto& v : nibbles) v = static_cast<uint8_t>(rng.UniformInt(16));
        quant::PackCodes4(nibbles.data(), m, row);
      }
      std::vector<uint16_t> scalar(count), avx2(count);
      simd::internal::PqAdcFastScanScalar(lut.data(), m, codes.data(), count,
                                          scalar.data());
      simd::internal::PqAdcFastScanAvx2(lut.data(), m, codes.data(), count,
                                        avx2.data());
      EXPECT_EQ(scalar, avx2) << "m=" << m << " count=" << count;

      // Tile form, several LUTs (reuses the same lut shifted by a constant).
      constexpr int kQueries = 3;
      std::vector<std::vector<uint8_t>> luts(kQueries, lut);
      const uint8_t* lut_ptrs[kQueries];
      for (int g = 0; g < kQueries; ++g) {
        // Vary only the valid rows: the odd-m pad row must stay zero (a
        // kernel precondition QuantizeAdcTable guarantees).
        for (int s = 0; s < m; ++s) {
          for (int c = 0; c < 16; ++c) {
            luts[g][s * 16 + c] =
                static_cast<uint8_t>(luts[g][s * 16 + c] ^ (g * 37));
          }
        }
        lut_ptrs[g] = luts[g].data();
      }
      std::vector<uint16_t> tile_scalar(
          static_cast<std::size_t>(kQueries) * count);
      std::vector<uint16_t> tile_avx2(tile_scalar.size());
      simd::internal::PqAdcFastScanTileScalar(lut_ptrs, kQueries, m,
                                              codes.data(), count,
                                              tile_scalar.data());
      simd::internal::PqAdcFastScanTileAvx2(lut_ptrs, kQueries, m,
                                            codes.data(), count,
                                            tile_avx2.data());
      EXPECT_EQ(tile_scalar, tile_avx2) << "m=" << m << " count=" << count;

#if defined(RESINFER_HAVE_AVX512)
      // Integer sums are exact, so the AVX-512 tier must also match the
      // scalar reference bit-for-bit, not just approximately.
      if (simd::BestSupportedLevel() >= simd::SimdLevel::kAvx512) {
        std::vector<uint16_t> avx512(count);
        simd::internal::PqAdcFastScanAvx512(lut.data(), m, codes.data(),
                                            count, avx512.data());
        EXPECT_EQ(scalar, avx512) << "m=" << m << " count=" << count;
        std::vector<uint16_t> tile_avx512(tile_scalar.size());
        simd::internal::PqAdcFastScanTileAvx512(lut_ptrs, kQueries, m,
                                                codes.data(), count,
                                                tile_avx512.data());
        EXPECT_EQ(tile_scalar, tile_avx512)
            << "m=" << m << " count=" << count;
      }
#endif
    }
  }
#endif
}

// --- Estimator / search conformance ---------------------------------------

struct PackedFixture {
  data::Dataset ds = testing::SmallDataset(1100, 32, 1.0, 96, 6, 160);
  core::PqEstimatorData pq;
  core::RqEstimatorData rq;
  core::LinearCorrector pq_corrector, rq_corrector;

  PackedFixture() {
    quant::PqOptions pq_options;
    pq_options.num_subspaces = 8;
    pq_options.nbits = 4;
    pq = core::BuildPqEstimatorData(ds.base, pq_options);
    quant::RqOptions rq_options;
    rq_options.num_stages = 4;
    rq_options.nbits = 4;
    rq = core::BuildRqEstimatorData(ds.base, rq_options);

    core::TrainingDataOptions training;
    training.max_queries = 60;
    {
      core::PqAdcEstimator estimator(&pq);
      pq_corrector =
          core::TrainAnyCorrector(estimator, ds.base, ds.train_queries,
                                  training);
    }
    {
      core::RqAdcEstimator estimator(&rq);
      rq_corrector =
          core::TrainAnyCorrector(estimator, ds.base, ds.train_queries,
                                  training);
    }
  }
};

TEST(FastScanParityTest, PackedEstimatorPathsBitIdentical) {
  PackedFixture f;
  ASSERT_TRUE(f.pq.pq.layout().packed());
  core::PqAdcEstimator estimator(&f.pq);
  const quant::CodeStore store = estimator.MakeCodeStore();
  ASSERT_EQ(store.packing(), quant::CodePacking::kPacked4);

  const int64_t n = f.ds.size();
  std::vector<int64_t> ids(n);
  std::iota(ids.begin(), ids.end(), 0);

  for (simd::SimdLevel level : LevelsToTest()) {
    simd::ScopedSimdLevel guard(level);
    estimator.BeginQuery(f.ds.queries.Row(0));
    // Reference: sequential Estimate at this level (the quantized LUT is
    // built from this level's float ADC table, so parity is per level).
    std::vector<float> want(n), want_extras(n);
    for (int64_t i = 0; i < n; ++i) {
      want[i] = estimator.Estimate(i, &want_extras[i]);
    }
    // Batch (id gather), including a non-multiple-of-32 tail.
    const int count = static_cast<int>(n) - 3;
    std::vector<float> got(count), extras(count);
    estimator.EstimateBatch(ids.data(), count, got.data(), extras.data());
    for (int i = 0; i < count; ++i) {
      ASSERT_EQ(got[i], want[i]) << "level=" << SimdLevelName(level);
      ASSERT_EQ(extras[i], want_extras[i]);
    }
    // Code-resident over the id-ordered store records.
    estimator.EstimateBatchCodes(store.data(), count, got.data(),
                                 extras.data());
    for (int i = 0; i < count; ++i) {
      ASSERT_EQ(got[i], want[i]) << "codes level=" << SimdLevelName(level);
      ASSERT_EQ(extras[i], want_extras[i]);
    }
  }
}

TEST(FastScanParityTest, PackedGroupScanMatchesPerMember) {
  PackedFixture f;
  core::PqAdcEstimator estimator(&f.pq);
  const quant::CodeStore store = estimator.MakeCodeStore();
  const int group = static_cast<int>(f.ds.queries.rows());
  const int count = 77;  // non-multiple-of-8 tail inside the tile kernel

  for (simd::SimdLevel level : LevelsToTest()) {
    simd::ScopedSimdLevel guard(level);
    estimator.SetQueryBatch(f.ds.queries.Row(0), group, f.ds.queries.cols());
    int members[index::kMaxQueryGroup];
    for (int g = 0; g < group; ++g) members[g] = g;

    std::vector<float> grouped(static_cast<std::size_t>(group) * count);
    std::vector<float> grouped_extras(grouped.size());
    estimator.EstimateBatchCodesGroup(store.data(), count, members, group,
                                      grouped.data(), grouped_extras.data());

    std::vector<float> single(count), single_extras(count);
    for (int g = 0; g < group; ++g) {
      estimator.SelectQuery(g);
      estimator.EstimateBatchCodes(store.data(), count, single.data(),
                                   single_extras.data());
      for (int i = 0; i < count; ++i) {
        ASSERT_EQ(single[i], grouped[static_cast<std::size_t>(g) * count + i])
            << "g=" << g << " i=" << i << " level=" << SimdLevelName(level);
        ASSERT_EQ(single_extras[i],
                  grouped_extras[static_cast<std::size_t>(g) * count + i]);
      }
    }
  }
}

TEST(FastScanParityTest, PackedRqEstimatorPathsBitIdentical) {
  PackedFixture f;
  ASSERT_TRUE(f.rq.rq.layout().packed());
  ASSERT_EQ(f.rq.rq.code_size(), 2);
  core::RqAdcEstimator estimator(&f.rq);
  const quant::CodeStore store = estimator.MakeCodeStore();
  const int64_t n = f.ds.size();
  std::vector<int64_t> ids(n);
  std::iota(ids.begin(), ids.end(), 0);

  for (simd::SimdLevel level : LevelsToTest()) {
    simd::ScopedSimdLevel guard(level);
    estimator.BeginQuery(f.ds.queries.Row(1));
    const int count = static_cast<int>(n) - 5;
    std::vector<float> batch(count), batch_extras(count);
    std::vector<float> stream(count), stream_extras(count);
    estimator.EstimateBatch(ids.data(), count, batch.data(),
                            batch_extras.data());
    estimator.EstimateBatchCodes(store.data(), count, stream.data(),
                                 stream_extras.data());
    for (int i = 0; i < count; ++i) {
      float extra = 0.0f;
      const float sequential = estimator.Estimate(i, &extra);
      ASSERT_EQ(batch[i], sequential) << i;
      ASSERT_EQ(stream[i], sequential) << i;
      ASSERT_EQ(batch_extras[i], extra);
      ASSERT_EQ(stream_extras[i], extra);
    }
  }
}

TEST(FastScanParityTest, PackedIvfSearchGatherVsCodeResident) {
  PackedFixture f;
  IvfOptions options;
  options.num_clusters = 24;
  IvfIndex gather_index = IvfIndex::Build(f.ds.base, options);

  core::DdcAnyComputer with_codes(
      &f.ds.base, std::make_unique<core::PqAdcEstimator>(&f.pq),
      &f.pq_corrector);
  core::DdcAnyComputer without_codes(
      &f.ds.base, std::make_unique<core::PqAdcEstimator>(&f.pq),
      &f.pq_corrector);
  ASSERT_TRUE(gather_index.AttachCodesFrom(with_codes));
  ASSERT_EQ(gather_index.codes().packing(), quant::CodePacking::kPacked4);

  for (simd::SimdLevel level : LevelsToTest()) {
    simd::ScopedSimdLevel guard(level);
    for (int64_t q = 0; q < f.ds.queries.rows(); ++q) {
      with_codes.stats().Reset();
      without_codes.stats().Reset();
      auto streamed =
          gather_index.Search(with_codes, f.ds.queries.Row(q), 10, 6);
      gather_index.DetachCodes();
      auto gathered =
          gather_index.Search(without_codes, f.ds.queries.Row(q), 10, 6);
      ASSERT_TRUE(gather_index.AttachCodesFrom(with_codes));

      ASSERT_EQ(streamed.size(), gathered.size()) << q;
      for (std::size_t i = 0; i < streamed.size(); ++i) {
        EXPECT_EQ(streamed[i].id, gathered[i].id) << q;
        EXPECT_EQ(streamed[i].distance, gathered[i].distance) << q;
      }
      EXPECT_EQ(with_codes.stats().candidates,
                without_codes.stats().candidates);
      EXPECT_EQ(with_codes.stats().pruned, without_codes.stats().pruned);
      EXPECT_EQ(with_codes.stats().exact_computations,
                without_codes.stats().exact_computations);
    }
  }
}

TEST(FastScanParityTest, PackedSearchHandlesEmptyBuckets) {
  // Hand-built CSR with empty buckets (first, middle, last) and an attached
  // packed store: scans must skip them cleanly on both routes.
  PackedFixture f;
  const int64_t n = f.ds.size();
  linalg::Matrix centroids = testing::RandomMatrix(6, 32, 97);
  std::vector<int64_t> ids(n);
  std::iota(ids.begin(), ids.end(), 0);
  const std::vector<int64_t> offsets = {0, 0, n / 3, n / 3, 2 * n / 3, n, n};
  IvfIndex index = IvfIndex::FromCsr(n, std::move(centroids), offsets, ids);

  core::DdcAnyComputer computer(
      &f.ds.base, std::make_unique<core::PqAdcEstimator>(&f.pq),
      &f.pq_corrector);
  ASSERT_TRUE(index.AttachCodesFrom(computer));

  for (int64_t q = 0; q < f.ds.queries.rows(); ++q) {
    auto streamed =
        index.Search(computer, f.ds.queries.Row(q), 10, index.num_clusters());
    index.DetachCodes();
    auto gathered =
        index.Search(computer, f.ds.queries.Row(q), 10, index.num_clusters());
    ASSERT_TRUE(index.AttachCodesFrom(computer));
    ASSERT_EQ(streamed.size(), gathered.size());
    ASSERT_EQ(streamed.size(), 10u);
    for (std::size_t i = 0; i < streamed.size(); ++i) {
      EXPECT_EQ(streamed[i].id, gathered[i].id);
      EXPECT_EQ(streamed[i].distance, gathered[i].distance);
    }
  }
}

TEST(FastScanParityTest, PackedDdcOpqComputerPathsAgree) {
  data::Dataset ds = testing::SmallDataset(900, 32, 1.0, 98, 5, 120);
  core::DdcOpqOptions options;
  options.opq.pq.num_subspaces = 8;
  options.opq.pq.nbits = 4;
  options.opq.num_iterations = 2;
  options.training.max_queries = 60;
  core::DdcOpqArtifacts artifacts =
      core::TrainDdcOpq(ds.base, ds.train_queries, options);
  ASSERT_TRUE(artifacts.opq.codebook().layout().packed());
  ASSERT_EQ(static_cast<int64_t>(artifacts.codes.size()),
            ds.size() * artifacts.opq.codebook().code_size());

  core::DdcOpqComputer computer(&ds.base, &artifacts);
  const quant::CodeStore store = computer.MakeCodeStore();
  ASSERT_EQ(store.packing(), quant::CodePacking::kPacked4);
  std::vector<int64_t> ids(ds.size());
  std::iota(ids.begin(), ids.end(), 0);
  const int count = 101;

  for (simd::SimdLevel level : LevelsToTest()) {
    simd::ScopedSimdLevel guard(level);
    computer.BeginQuery(ds.queries.Row(0));
    const float tau = computer.ExactDistance(17);
    std::vector<EstimateResult> batch(count), stream(count);
    computer.EstimateBatch(ids.data(), count, tau, batch.data());
    computer.EstimateBatchCodes(store.data(), ids.data(), count, tau,
                                stream.data());
    for (int i = 0; i < count; ++i) {
      auto sequential = computer.EstimateWithThreshold(i, tau);
      EXPECT_EQ(batch[i].pruned, sequential.pruned) << i;
      EXPECT_EQ(batch[i].distance, sequential.distance) << i;
      EXPECT_EQ(stream[i].pruned, sequential.pruned) << i;
      EXPECT_EQ(stream[i].distance, sequential.distance) << i;
    }
  }
}

TEST(FastScanParityTest, PackedRecallMatchesByteLayoutAfterRescore) {
  // End-to-end sanity on the rescore epilogue: packed-quantized pruning
  // with exact rescore must land at the same recall@10 as the float-ADC
  // byte layout on the same trained centroids (both prune with a learned
  // corrector, both rescore survivors exactly).
  PackedFixture f;
  IvfOptions options;
  options.num_clusters = 24;
  IvfIndex index = IvfIndex::Build(f.ds.base, options);
  auto truth = data::BruteForceKnn(f.ds.base, f.ds.queries, 10);

  core::DdcAnyComputer packed(
      &f.ds.base, std::make_unique<core::PqAdcEstimator>(&f.pq),
      &f.pq_corrector);
  std::vector<std::vector<int64_t>> results;
  for (int64_t q = 0; q < f.ds.queries.rows(); ++q) {
    auto found = index.Search(packed, f.ds.queries.Row(q), 10, 8);
    std::vector<int64_t> row;
    for (const auto& nb : found) row.push_back(nb.id);
    results.push_back(std::move(row));
  }
  const double recall = data::MeanRecallAtK(results, truth, 10);
  // The corrector targets high recall; quantization error is inside the
  // learned margin, so the packed tier must not collapse recall.
  EXPECT_GT(recall, 0.9);
}

}  // namespace
}  // namespace resinfer::index

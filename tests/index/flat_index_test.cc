#include "index/flat_index.h"

#include <gtest/gtest.h>

#include "data/ground_truth.h"
#include "test_util.h"

namespace resinfer::index {
namespace {

TEST(FlatIndexTest, ExactComputerMatchesBruteForce) {
  data::Dataset ds = testing::SmallDataset(800, 16, 1.0, 30, 8, 4);
  FlatIndex index(ds.base);
  FlatDistanceComputer computer(ds.base.data(), ds.size(), ds.dim());

  for (int64_t q = 0; q < ds.queries.rows(); ++q) {
    auto result = index.Search(computer, ds.queries.Row(q), 10);
    auto truth = data::BruteForceKnnSingle(ds.base, ds.queries.Row(q), 10);
    ASSERT_EQ(result.size(), truth.size());
    for (std::size_t i = 0; i < truth.size(); ++i) {
      EXPECT_EQ(result[i].id, truth[i].id);
      EXPECT_FLOAT_EQ(result[i].distance, truth[i].distance);
    }
  }
}

TEST(FlatIndexTest, StatsTracked) {
  data::Dataset ds = testing::SmallDataset(300, 8, 1.0, 31, 2, 2);
  FlatIndex index(ds.base);
  FlatDistanceComputer computer(ds.base.data(), ds.size(), ds.dim());
  index.Search(computer, ds.queries.Row(0), 5);
  EXPECT_EQ(computer.stats().candidates, 300);
  EXPECT_EQ(computer.stats().pruned, 0);
  EXPECT_EQ(computer.stats().exact_computations, 300);
}

TEST(FlatIndexTest, KLargerThanBaseClamps) {
  data::Dataset ds = testing::SmallDataset(10, 8, 1.0, 32, 2, 2);
  FlatIndex index(ds.base);
  FlatDistanceComputer computer(ds.base.data(), ds.size(), ds.dim());
  auto result = index.Search(computer, ds.queries.Row(0), 50);
  EXPECT_EQ(result.size(), 10u);
}

}  // namespace
}  // namespace resinfer::index

#include "index/hnsw_index.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "data/ground_truth.h"
#include "data/metrics.h"
#include "test_util.h"

namespace resinfer::index {
namespace {

HnswOptions SmallOptions() {
  HnswOptions options;
  options.M = 8;
  options.ef_construction = 60;
  return options;
}

double HnswRecall(const data::Dataset& ds, const HnswIndex& index, int k,
                  int ef) {
  FlatDistanceComputer computer(ds.base.data(), ds.base.rows(),
                                ds.base.cols());
  auto truth = data::BruteForceKnn(ds.base, ds.queries, k);
  std::vector<std::vector<int64_t>> results;
  HnswScratch scratch;
  for (int64_t q = 0; q < ds.queries.rows(); ++q) {
    auto found = index.Search(computer, ds.queries.Row(q), k, ef, &scratch);
    std::vector<int64_t> ids;
    for (const auto& nb : found) ids.push_back(nb.id);
    results.push_back(std::move(ids));
  }
  return data::MeanRecallAtK(results, truth, k);
}

TEST(HnswIndexTest, HighRecallWithLargeEf) {
  data::Dataset ds = testing::SmallDataset(3000, 24, 1.0, 50, 16, 4);
  HnswIndex index = HnswIndex::Build(ds.base, SmallOptions());
  EXPECT_GT(HnswRecall(ds, index, 10, 128), 0.95);
}

TEST(HnswIndexTest, RecallGrowsWithEf) {
  data::Dataset ds = testing::SmallDataset(3000, 24, 1.0, 51, 16, 4);
  HnswIndex index = HnswIndex::Build(ds.base, SmallOptions());
  double lo = HnswRecall(ds, index, 10, 10);
  double hi = HnswRecall(ds, index, 10, 200);
  EXPECT_GE(hi, lo - 0.02);
  EXPECT_GT(hi, 0.97);
}

TEST(HnswIndexTest, DegreeBounds) {
  data::Dataset ds = testing::SmallDataset(1500, 16, 1.0, 52, 4, 2);
  HnswOptions options = SmallOptions();
  HnswIndex index = HnswIndex::Build(ds.base, options);
  for (int64_t i = 0; i < index.size(); ++i) {
    int count = 0;
    index.NeighborsAtBase(i, &count);
    EXPECT_LE(count, 2 * options.M);
    EXPECT_GE(count, 0);
  }
}

TEST(HnswIndexTest, GraphIsReasonablyConnected) {
  data::Dataset ds = testing::SmallDataset(1000, 16, 1.0, 53, 4, 2);
  HnswIndex index = HnswIndex::Build(ds.base, SmallOptions());
  // Every node except possibly a handful should have at least one link.
  int isolated = 0;
  for (int64_t i = 0; i < index.size(); ++i) {
    int count = 0;
    index.NeighborsAtBase(i, &count);
    if (count == 0) ++isolated;
  }
  EXPECT_LE(isolated, 1);  // only the very first insert could be isolated
}

TEST(HnswIndexTest, SingleAndTinyDatasets) {
  data::Dataset ds = testing::SmallDataset(3, 8, 1.0, 54, 2, 2);
  HnswIndex index = HnswIndex::Build(ds.base, SmallOptions());
  FlatDistanceComputer computer(ds.base.data(), 3, 8);
  auto result = index.Search(computer, ds.queries.Row(0), 3, 10);
  EXPECT_EQ(result.size(), 3u);
}

TEST(HnswIndexTest, ResultsAscendAndExact) {
  data::Dataset ds = testing::SmallDataset(800, 16, 1.0, 55, 4, 2);
  HnswIndex index = HnswIndex::Build(ds.base, SmallOptions());
  FlatDistanceComputer computer(ds.base.data(), ds.size(), ds.dim());
  auto result = index.Search(computer, ds.queries.Row(1), 10, 64);
  for (std::size_t i = 1; i < result.size(); ++i) {
    EXPECT_LE(result[i - 1].distance, result[i].distance);
  }
  // Distances must be exact.
  for (const auto& nb : result) {
    EXPECT_FLOAT_EQ(nb.distance,
                    data::ExactL2Sqr(ds.base, nb.id, ds.queries.Row(1)));
  }
}

TEST(HnswIndexTest, SearchClampsOutOfRangeArguments) {
  // k <= 0, k > n, and ef < k must clamp instead of aborting — the serving
  // path passes caller-supplied knobs straight through. Mirrors
  // IvfIndexTest.SearchClampsOutOfRangeArguments.
  data::Dataset ds = testing::SmallDataset(500, 8, 1.0, 45, 4, 2);
  HnswIndex index = HnswIndex::Build(ds.base, SmallOptions());
  FlatDistanceComputer computer(ds.base.data(), ds.size(), ds.dim());
  const float* query = ds.queries.Row(0);

  // k <= 0: empty result, no scan surprises.
  EXPECT_TRUE(index.Search(computer, query, 0, 32).empty());
  EXPECT_TRUE(index.Search(computer, query, -3, 32).empty());

  // ef < k (including ef <= 0) widens to k: identical results to the
  // explicit ef = k call.
  auto explicit_ef = index.Search(computer, query, 10, 10);
  auto small_ef = index.Search(computer, query, 10, 3);
  auto zero_ef = index.Search(computer, query, 10, 0);
  auto negative_ef = index.Search(computer, query, 10, -5);
  ASSERT_EQ(explicit_ef.size(), small_ef.size());
  ASSERT_EQ(explicit_ef.size(), zero_ef.size());
  ASSERT_EQ(explicit_ef.size(), negative_ef.size());
  for (std::size_t i = 0; i < explicit_ef.size(); ++i) {
    EXPECT_EQ(explicit_ef[i].id, small_ef[i].id);
    EXPECT_EQ(explicit_ef[i].id, zero_ef[i].id);
    EXPECT_EQ(explicit_ef[i].id, negative_ef[i].id);
    EXPECT_EQ(explicit_ef[i].distance, small_ef[i].distance);
  }

  // k > n yields at most n neighbors, each point once, still sorted.
  auto all = index.Search(computer, query, 5000, 5000);
  EXPECT_LE(static_cast<int64_t>(all.size()), ds.size());
  EXPECT_GT(all.size(), 0u);
  std::vector<int64_t> seen;
  for (std::size_t i = 0; i < all.size(); ++i) {
    seen.push_back(all[i].id);
    if (i > 0) EXPECT_GE(all[i].distance, all[i - 1].distance);
  }
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::adjacent_find(seen.begin(), seen.end()), seen.end());
}

TEST(HnswIndexTest, ScratchReuseAcrossQueriesIsSafe) {
  data::Dataset ds = testing::SmallDataset(500, 16, 1.0, 56, 8, 2);
  HnswIndex index = HnswIndex::Build(ds.base, SmallOptions());
  FlatDistanceComputer computer(ds.base.data(), ds.size(), ds.dim());
  HnswScratch scratch;
  std::vector<Neighbor> first, repeat;
  first = index.Search(computer, ds.queries.Row(0), 5, 32, &scratch);
  for (int64_t q = 0; q < ds.queries.rows(); ++q) {
    index.Search(computer, ds.queries.Row(q), 5, 32, &scratch);
  }
  repeat = index.Search(computer, ds.queries.Row(0), 5, 32, &scratch);
  ASSERT_EQ(first.size(), repeat.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].id, repeat[i].id);
  }
}

TEST(HnswIndexTest, GraphBytesPositive) {
  data::Dataset ds = testing::SmallDataset(200, 8, 1.0, 57, 2, 2);
  HnswIndex index = HnswIndex::Build(ds.base, SmallOptions());
  EXPECT_GT(index.GraphBytes(), 0);
}

}  // namespace
}  // namespace resinfer::index

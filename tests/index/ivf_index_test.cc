#include "index/ivf_index.h"

#include <cstring>
#include <numeric>

#include <gtest/gtest.h>

#include "data/ground_truth.h"
#include "data/metrics.h"
#include "quant/code_store.h"
#include "test_util.h"

namespace resinfer::index {
namespace {

IvfOptions SmallOptions() {
  IvfOptions options;
  options.num_clusters = 32;
  return options;
}

TEST(IvfIndexTest, BucketsPartitionTheBase) {
  data::Dataset ds = testing::SmallDataset(1000, 16, 1.0, 40, 8, 4);
  IvfIndex index = IvfIndex::Build(ds.base, SmallOptions());
  ASSERT_EQ(static_cast<int>(index.bucket_offsets().size()),
            index.num_clusters() + 1);
  EXPECT_EQ(index.bucket_offsets().front(), 0);
  EXPECT_EQ(index.bucket_offsets().back(),
            static_cast<int64_t>(index.ids().size()));
  std::vector<int> seen(1000, 0);
  int64_t total = 0;
  for (int b = 0; b < index.num_clusters(); ++b) {
    const int64_t* ids = index.BucketIds(b);
    for (int64_t i = 0; i < index.BucketSize(b); ++i) {
      ASSERT_GE(ids[i], 0);
      ASSERT_LT(ids[i], 1000);
      ++seen[ids[i]];
      ++total;
    }
  }
  EXPECT_EQ(total, 1000);
  for (int s : seen) EXPECT_EQ(s, 1);
}

TEST(IvfIndexTest, FullProbeEqualsBruteForce) {
  data::Dataset ds = testing::SmallDataset(600, 16, 1.0, 41, 8, 4);
  IvfIndex index = IvfIndex::Build(ds.base, SmallOptions());
  FlatDistanceComputer computer(ds.base.data(), ds.size(), ds.dim());
  for (int64_t q = 0; q < ds.queries.rows(); ++q) {
    auto result = index.Search(computer, ds.queries.Row(q), 10,
                               index.num_clusters());
    auto truth = data::BruteForceKnnSingle(ds.base, ds.queries.Row(q), 10);
    ASSERT_EQ(result.size(), truth.size());
    for (std::size_t i = 0; i < truth.size(); ++i) {
      EXPECT_EQ(result[i].id, truth[i].id) << "query " << q << " rank " << i;
    }
  }
}

TEST(IvfIndexTest, RecallGrowsWithNprobe) {
  data::Dataset ds = testing::SmallDataset(3000, 24, 1.0, 42, 16, 4);
  IvfIndex index = IvfIndex::Build(ds.base, SmallOptions());
  FlatDistanceComputer computer(ds.base.data(), ds.size(), ds.dim());
  auto truth = data::BruteForceKnn(ds.base, ds.queries, 10);

  double prev_recall = -1.0;
  for (int nprobe : {1, 4, 32}) {
    std::vector<std::vector<int64_t>> results;
    for (int64_t q = 0; q < ds.queries.rows(); ++q) {
      auto found = index.Search(computer, ds.queries.Row(q), 10, nprobe);
      std::vector<int64_t> ids;
      for (const auto& nb : found) ids.push_back(nb.id);
      results.push_back(std::move(ids));
    }
    double recall = data::MeanRecallAtK(results, truth, 10);
    EXPECT_GE(recall, prev_recall - 0.05)
        << "recall should not collapse as nprobe grows";
    prev_recall = recall;
  }
  EXPECT_GT(prev_recall, 0.999);  // full probe is exact
}

TEST(IvfIndexTest, ClusterCapRespectsMinPoints) {
  data::Dataset ds = testing::SmallDataset(64, 8, 1.0, 43, 2, 2);
  IvfOptions options;
  options.num_clusters = 4096;
  options.min_points_per_cluster = 8;
  IvfIndex index = IvfIndex::Build(ds.base, options);
  EXPECT_LE(index.num_clusters(), 8);  // 64 / 8
}

TEST(IvfIndexTest, AttachCodesPermutesIntoBucketOrder) {
  data::Dataset ds = testing::SmallDataset(300, 8, 1.0, 45, 2, 2);
  // One record per point: the point id in the code byte plus one sidecar.
  quant::CodeStore source(ds.size(), 1, 1, "test/cs1/sc1/n300");
  for (int64_t i = 0; i < ds.size(); ++i) {
    const uint8_t code = static_cast<uint8_t>(i & 0xff);
    source.SetCode(i, &code);
    source.SetSidecar(i, 0, static_cast<float>(i));
  }

  IvfIndex index = IvfIndex::Build(ds.base, SmallOptions(), &source);
  ASSERT_TRUE(index.has_codes());
  EXPECT_EQ(index.codes().size(), static_cast<int64_t>(index.ids().size()));
  for (int b = 0; b < index.num_clusters(); ++b) {
    const int64_t* ids = index.BucketIds(b);
    const uint8_t* records = index.BucketCodes(b);
    for (int64_t j = 0; j < index.BucketSize(b); ++j) {
      const uint8_t* rec = records + j * index.codes().stride();
      EXPECT_EQ(rec[0], static_cast<uint8_t>(ids[j] & 0xff));
      EXPECT_EQ(quant::RecordSidecars(rec, 1)[0],
                static_cast<float>(ids[j]));
    }
  }

  index.DetachCodes();
  EXPECT_FALSE(index.has_codes());
}

TEST(IvfIndexTest, SearchClampsOutOfRangeArguments) {
  // nprobe <= 0, nprobe > num_clusters, k <= 0 and k > n must clamp
  // instead of aborting or returning surprise-empty results — the serving
  // path passes caller-supplied knobs straight through.
  data::Dataset ds = testing::SmallDataset(500, 8, 1.0, 45, 4, 2);
  IvfIndex index = IvfIndex::Build(ds.base, SmallOptions());
  FlatDistanceComputer computer(ds.base.data(), ds.size(), ds.dim());
  const float* query = ds.queries.Row(0);

  // k <= 0: empty result, no scan surprises.
  EXPECT_TRUE(index.Search(computer, query, 0, 8).empty());
  EXPECT_TRUE(index.Search(computer, query, -3, 8).empty());

  // nprobe <= 0 clamps to 1 (the nearest bucket still gets scanned).
  auto one_probe = index.Search(computer, query, 5, 1);
  auto zero_probe = index.Search(computer, query, 5, 0);
  auto negative_probe = index.Search(computer, query, 5, -7);
  ASSERT_EQ(one_probe.size(), zero_probe.size());
  ASSERT_EQ(one_probe.size(), negative_probe.size());
  for (std::size_t i = 0; i < one_probe.size(); ++i) {
    EXPECT_EQ(one_probe[i].id, zero_probe[i].id);
    EXPECT_EQ(one_probe[i].id, negative_probe[i].id);
  }

  // nprobe > num_clusters clamps to a full sweep.
  auto full = index.Search(computer, query, 10, index.num_clusters());
  auto over = index.Search(computer, query, 10, index.num_clusters() + 100);
  ASSERT_EQ(full.size(), over.size());
  for (std::size_t i = 0; i < full.size(); ++i) {
    EXPECT_EQ(full[i].id, over[i].id);
  }

  // k > n yields every point, once, still sorted.
  auto all = index.Search(computer, query, 5000, index.num_clusters());
  EXPECT_EQ(static_cast<int64_t>(all.size()), ds.size());

  // SearchBatch applies the same clamps.
  auto batch_zero_k = index.SearchBatch(computer, ds.queries, 0, 8);
  ASSERT_EQ(batch_zero_k.size(), static_cast<std::size_t>(ds.queries.rows()));
  for (const auto& row : batch_zero_k) EXPECT_TRUE(row.empty());
  auto batch_clamped = index.SearchBatch(computer, ds.queries, 5, -2);
  for (int64_t q = 0; q < ds.queries.rows(); ++q) {
    auto want = index.Search(computer, ds.queries.Row(q), 5, 1);
    const auto& got = batch_clamped[static_cast<std::size_t>(q)];
    ASSERT_EQ(want.size(), got.size()) << q;
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(want[i].id, got[i].id) << q;
    }
  }
  auto batch_over = index.SearchBatch(computer, ds.queries, 5,
                                      index.num_clusters() + 9);
  for (int64_t q = 0; q < ds.queries.rows(); ++q) {
    auto want =
        index.Search(computer, ds.queries.Row(q), 5, index.num_clusters());
    const auto& got = batch_over[static_cast<std::size_t>(q)];
    ASSERT_EQ(want.size(), got.size()) << q;
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(want[i].id, got[i].id) << q;
    }
  }
}

TEST(IvfIndexTest, AttachSharedCodesAddsNoCopyOfTheRecords) {
  // Regression for the attach path's old 2x-peak-RSS behavior: AttachCodes
  // deep-copied the store even when the records were already in bucket
  // order. AttachSharedCodes must alias the source bytes — the pointer
  // identity below is exactly the "no second copy exists" property, which
  // is what keeps attach O(1) in memory for multi-GB sections.
  data::Dataset ds = testing::SmallDataset(400, 8, 1.0, 45, 2, 2);
  IvfIndex index = IvfIndex::Build(ds.base, SmallOptions());

  quant::CodeStore id_ordered(index.size(), 2, 1, "shared-attach");
  for (int64_t i = 0; i < index.size(); ++i) {
    const uint8_t code[2] = {static_cast<uint8_t>(i),
                             static_cast<uint8_t>(i >> 8)};
    id_ordered.SetCode(i, code);
    id_ordered.SetSidecar(i, 0, static_cast<float>(i));
  }
  // Bucket-permute once (an inherent copy), then share — the serving /
  // persist path where records already sit in bucket order.
  quant::CodeStore permuted = id_ordered.PermutedBy(index.ids());
  const uint8_t* source_bytes = permuted.data();

  index.AttachSharedCodes(permuted);
  ASSERT_TRUE(index.has_codes());
  EXPECT_EQ(index.codes().data(), source_bytes);
  EXPECT_TRUE(index.codes().storage().SharesOwnerWith(permuted.storage()));
  EXPECT_TRUE(index.codes().is_view());

  // The shared records are the permuted ones: record j describes ids()[j].
  for (int64_t j = 0; j < index.size(); ++j) {
    EXPECT_EQ(index.codes().record(j)[0],
              static_cast<uint8_t>(index.ids()[j]))
        << j;
  }

  // AttachCodes (id-ordered input) still works and still copies — the
  // permutation is inherent there — but must agree record-for-record.
  IvfIndex copy_index = IvfIndex::Build(ds.base, SmallOptions());
  ASSERT_EQ(copy_index.ids(), index.ids());
  copy_index.AttachCodes(id_ordered);
  ASSERT_EQ(copy_index.codes().data_bytes(), index.codes().data_bytes());
  EXPECT_EQ(std::memcmp(copy_index.codes().data(), index.codes().data(),
                        static_cast<std::size_t>(index.codes().data_bytes())),
            0);
}

TEST(IvfIndexTest, ResultsAscendByDistance) {
  data::Dataset ds = testing::SmallDataset(500, 8, 1.0, 44, 4, 2);
  IvfIndex index = IvfIndex::Build(ds.base, SmallOptions());
  FlatDistanceComputer computer(ds.base.data(), ds.size(), ds.dim());
  auto result = index.Search(computer, ds.queries.Row(0), 20, 8);
  for (std::size_t i = 1; i < result.size(); ++i) {
    EXPECT_LE(result[i - 1].distance, result[i].distance);
  }
}

}  // namespace
}  // namespace resinfer::index

// Multi-query serving conformance. Three layers are pinned here, each
// against the sequential single-query path, bit-identically (values, ids,
// ComputerStats), across SIMD levels and every DDC estimator:
//
//   1. SetQueryBatch/SelectQuery: selecting a group member must leave the
//      computer in exactly the state BeginQuery(member's query) builds.
//   2. EstimateBatchGroup / EstimateBatchCodesGroup: the group scoring of
//      one candidate block must match the per-member loop it is defined
//      against (this exercises the tiled kernels where overridden).
//   3. IvfIndex::SearchBatch / BatchSearchIvf(group_size > 1): the
//      query-major bucket scan must return exactly the per-query Search
//      results — including non-multiple-of-group query counts and empty
//      buckets.
#include <cmath>
#include <functional>
#include <memory>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/ddc_any.h"
#include "core/ddc_opq.h"
#include "core/ddc_pca.h"
#include "core/ddc_res.h"
#include "core/ddc_rq_cascade.h"
#include "index/batch.h"
#include "index/distance_computer.h"
#include "index/ivf_index.h"
#include "simd/dispatch.h"
#include "test_util.h"

namespace resinfer::index {
namespace {

struct MultiQueryFixture {
  // 19 queries: not a multiple of any group size used below, so the tail
  // group is always partial.
  data::Dataset ds = testing::SmallDataset(1100, 32, 1.0, 91, 19, 160);

  core::PqEstimatorData pq;
  core::RqEstimatorData rq;
  core::SqEstimatorData sq;
  core::LinearCorrector pq_corrector, rq_corrector, sq_corrector;

  linalg::PcaModel pca;
  linalg::Matrix rotated;
  core::DdcPcaArtifacts pca_artifacts;
  core::DdcOpqArtifacts opq_artifacts;
  core::DdcRqCascadeArtifacts cascade_artifacts;

  MultiQueryFixture() {
    quant::PqOptions pq_options;
    pq_options.num_subspaces = 8;
    pq_options.nbits = 6;
    pq = core::BuildPqEstimatorData(ds.base, pq_options);
    quant::RqOptions rq_options;
    rq_options.num_stages = 4;
    rq_options.nbits = 6;
    rq = core::BuildRqEstimatorData(ds.base, rq_options);
    sq = core::BuildSqEstimatorData(ds.base);

    core::TrainingDataOptions training;
    training.max_queries = 60;
    {
      core::PqAdcEstimator estimator(&pq);
      pq_corrector = core::TrainAnyCorrector(estimator, ds.base,
                                             ds.train_queries, training);
    }
    {
      core::RqAdcEstimator estimator(&rq);
      rq_corrector = core::TrainAnyCorrector(estimator, ds.base,
                                             ds.train_queries, training);
    }
    {
      core::SqAdcEstimator estimator(&sq);
      sq_corrector = core::TrainAnyCorrector(estimator, ds.base,
                                             ds.train_queries, training);
    }

    pca = linalg::PcaModel::Fit(ds.base.data(), ds.size(), ds.dim());
    rotated = pca.TransformBatch(ds.base.data(), ds.size());
    core::DdcPcaOptions pca_options;
    pca_options.init_dim = 8;
    pca_options.delta_dim = 16;
    pca_options.training.max_queries = 60;
    pca_artifacts = core::TrainDdcPca(pca, rotated, ds.base,
                                      ds.train_queries, pca_options);

    core::DdcOpqOptions opq_options;
    opq_options.training.max_queries = 60;
    opq_artifacts = core::TrainDdcOpq(ds.base, ds.train_queries, opq_options);

    core::DdcRqCascadeOptions cascade_options;
    cascade_options.levels = {1, 3};
    cascade_options.rq.num_stages = 3;
    cascade_options.rq.nbits = 6;
    cascade_options.training.max_queries = 60;
    cascade_artifacts =
        core::TrainDdcRqCascade(ds.base, ds.train_queries, cascade_options);
  }

  using Factory = std::function<std::unique_ptr<DistanceComputer>()>;

  // Every DDC estimator plus the flat exact computer (which exercises the
  // L2SqrTile group override).
  std::vector<std::pair<std::string, Factory>> Factories() {
    std::vector<std::pair<std::string, Factory>> factories;
    factories.emplace_back("exact", [this] {
      return std::make_unique<FlatDistanceComputer>(ds.base.data(),
                                                    ds.size(), ds.dim());
    });
    factories.emplace_back("ddc-pq", [this] {
      return std::make_unique<core::DdcAnyComputer>(
          &ds.base, std::make_unique<core::PqAdcEstimator>(&pq),
          &pq_corrector);
    });
    factories.emplace_back("ddc-rq", [this] {
      return std::make_unique<core::DdcAnyComputer>(
          &ds.base, std::make_unique<core::RqAdcEstimator>(&rq),
          &rq_corrector);
    });
    factories.emplace_back("ddc-sq", [this] {
      return std::make_unique<core::DdcAnyComputer>(
          &ds.base, std::make_unique<core::SqAdcEstimator>(&sq),
          &sq_corrector);
    });
    factories.emplace_back("ddc-opq", [this] {
      return std::make_unique<core::DdcOpqComputer>(&ds.base,
                                                    &opq_artifacts);
    });
    factories.emplace_back("ddc-pca", [this] {
      return std::make_unique<core::DdcPcaComputer>(&pca, &rotated,
                                                    &pca_artifacts);
    });
    factories.emplace_back("ddc-res", [this] {
      core::DdcResOptions options;
      options.init_dim = 8;
      options.delta_dim = 8;
      return std::make_unique<core::DdcResComputer>(&pca, &rotated, options);
    });
    factories.emplace_back("ddc-rq-cascade", [this] {
      return std::make_unique<core::DdcRqCascadeComputer>(
          &ds.base, &cascade_artifacts);
    });
    return factories;
  }

  std::vector<simd::SimdLevel> Levels() { return simd::SupportedLevels(); }
};

MultiQueryFixture& Fixture() {
  static MultiQueryFixture* fixture = new MultiQueryFixture();
  return *fixture;
}

void ExpectSameResults(const std::vector<Neighbor>& want,
                       const std::vector<Neighbor>& got,
                       const std::string& label) {
  ASSERT_EQ(want.size(), got.size()) << label;
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(want[i].id, got[i].id) << label << " i=" << i;
    // Bit-identical, not just close.
    EXPECT_EQ(want[i].distance, got[i].distance) << label << " i=" << i;
  }
}

void ExpectSameStats(const ComputerStats& a, const ComputerStats& b,
                     const std::string& label) {
  EXPECT_EQ(a.candidates, b.candidates) << label;
  EXPECT_EQ(a.pruned, b.pruned) << label;
  EXPECT_EQ(a.dims_scanned, b.dims_scanned) << label;
  EXPECT_EQ(a.exact_computations, b.exact_computations) << label;
}

TEST(MultiQueryTest, SelectQueryMatchesBeginQuery) {
  // Group state must be interchangeable with per-query state: estimating
  // through SelectQuery(g) must be bit-identical to BeginQuery(query_g),
  // in arbitrary selection order.
  MultiQueryFixture& f = Fixture();
  const int group = 5;
  const int select_order[] = {3, 0, 4, 1, 2, 0, 4};
  for (auto& [name, factory] : f.Factories()) {
    for (simd::SimdLevel level : f.Levels()) {
      simd::ScopedSimdLevel guard(level);
      auto sequential = factory();
      auto grouped = factory();
      grouped->SetQueryBatch(f.ds.queries.Row(0), group, f.ds.dim());
      for (int g : select_order) {
        sequential->BeginQuery(f.ds.queries.Row(g));
        grouped->SelectQuery(g);
        sequential->stats().Reset();
        grouped->stats().Reset();
        for (int64_t id : {int64_t{0}, int64_t{17}, int64_t{530}}) {
          for (float tau : {kInfDistance, 0.0f, 50.0f}) {
            const EstimateResult want =
                sequential->EstimateWithThreshold(id, tau);
            const EstimateResult got = grouped->EstimateWithThreshold(id, tau);
            EXPECT_EQ(want.pruned, got.pruned) << name << " g=" << g;
            EXPECT_EQ(want.distance, got.distance) << name << " g=" << g;
          }
          EXPECT_EQ(sequential->ExactDistance(id), grouped->ExactDistance(id))
              << name << " g=" << g;
        }
        ExpectSameStats(sequential->stats(), grouped->stats(),
                        name + "/select");
      }
    }
  }
}

TEST(MultiQueryTest, GroupBatchMatchesPerMemberLoop) {
  // EstimateBatchGroup / EstimateBatchCodesGroup against the loop they are
  // defined as, with per-member taus straddling the pruning boundary and
  // block sizes straddling the kernel widths.
  MultiQueryFixture& f = Fixture();
  const int group = 6;
  const int members[] = {0, 2, 3, 5};
  const int num_members = 4;
  for (auto& [name, factory] : f.Factories()) {
    auto loop = factory();
    auto tiled = factory();
    const quant::CodeStore store = loop->MakeCodeStore();
    for (simd::SimdLevel level : f.Levels()) {
      simd::ScopedSimdLevel guard(level);
      for (int count : {1, 3, 4, 15, 32}) {
        std::vector<int64_t> ids(static_cast<std::size_t>(count));
        for (int i = 0; i < count; ++i) {
          ids[static_cast<std::size_t>(i)] = (i * 37 + count) % f.ds.size();
        }
        float taus[4];
        for (int j = 0; j < num_members; ++j) {
          taus[j] = j % 2 == 0 ? 40.0f + 10.0f * j : kInfDistance;
        }
        const std::string label =
            name + "/" + simd::SimdLevelName(level) + "/count=" +
            std::to_string(count);

        loop->SetQueryBatch(f.ds.queries.Row(0), group, f.ds.dim());
        tiled->SetQueryBatch(f.ds.queries.Row(0), group, f.ds.dim());
        loop->stats().Reset();
        tiled->stats().Reset();

        std::vector<EstimateResult> want(
            static_cast<std::size_t>(num_members * count));
        for (int j = 0; j < num_members; ++j) {
          loop->SelectQuery(members[j]);
          loop->EstimateBatch(ids.data(), count, taus[j],
                              want.data() + j * count);
        }
        std::vector<EstimateResult> got(want.size());
        tiled->EstimateBatchGroup(ids.data(), count, members, num_members,
                                  taus, got.data());
        for (std::size_t i = 0; i < want.size(); ++i) {
          ASSERT_EQ(want[i].pruned, got[i].pruned) << label << " i=" << i;
          ASSERT_EQ(want[i].distance, got[i].distance) << label << " i=" << i;
        }
        ExpectSameStats(loop->stats(), tiled->stats(), label + "/gather");

        if (store.empty()) continue;
        quant::CodeStore block = store.PermutedBy(ids);
        loop->stats().Reset();
        tiled->stats().Reset();
        for (int j = 0; j < num_members; ++j) {
          loop->SelectQuery(members[j]);
          loop->EstimateBatchCodes(block.data(), ids.data(), count, taus[j],
                                   want.data() + j * count);
        }
        tiled->EstimateBatchCodesGroup(block.data(), ids.data(), count,
                                       members, num_members, taus,
                                       got.data());
        for (std::size_t i = 0; i < want.size(); ++i) {
          ASSERT_EQ(want[i].pruned, got[i].pruned) << label << " i=" << i;
          ASSERT_EQ(want[i].distance, got[i].distance) << label << " i=" << i;
        }
        ExpectSameStats(loop->stats(), tiled->stats(), label + "/codes");
      }
    }
  }
}

TEST(MultiQueryTest, SearchBatchMatchesPerQuerySearchEveryComputer) {
  // The full query-major pipeline, gather and code-resident, across every
  // computer and SIMD level. 19 queries exercise the partial tail group.
  MultiQueryFixture& f = Fixture();
  IvfOptions options;
  options.num_clusters = 24;
  IvfIndex ivf = IvfIndex::Build(f.ds.base, options);

  for (auto& [name, factory] : f.Factories()) {
    auto sequential = factory();
    auto batched = factory();
    for (bool attach_codes : {false, true}) {
      if (attach_codes && !ivf.AttachCodesFrom(*batched)) continue;
      for (simd::SimdLevel level : f.Levels()) {
        simd::ScopedSimdLevel guard(level);
        const std::string label = name + "/" + simd::SimdLevelName(level) +
                                  (attach_codes ? "/codes" : "/gather");
        sequential->stats().Reset();
        batched->stats().Reset();
        std::vector<std::vector<Neighbor>> want;
        want.reserve(static_cast<std::size_t>(f.ds.queries.rows()));
        for (int64_t q = 0; q < f.ds.queries.rows(); ++q) {
          want.push_back(
              ivf.Search(*sequential, f.ds.queries.Row(q), 10, 6));
        }
        auto got = ivf.SearchBatch(*batched, f.ds.queries, 10, 6);
        ASSERT_EQ(want.size(), got.size()) << label;
        for (std::size_t q = 0; q < want.size(); ++q) {
          ExpectSameResults(want[q], got[q],
                            label + "/q=" + std::to_string(q));
        }
        ExpectSameStats(sequential->stats(), batched->stats(), label);
      }
    }
    ivf.DetachCodes();
  }
}

TEST(MultiQueryTest, SearchBatchHandlesEmptyBuckets) {
  // An index with guaranteed-empty buckets (more clusters than occupied
  // ones via FromCsr) must scan identically on both paths.
  MultiQueryFixture& f = Fixture();
  // Pack all points into bucket 0, 3, and 7 of a 10-bucket index; the rest
  // stay empty.
  const int64_t n = f.ds.size();
  std::vector<int64_t> ids(static_cast<std::size_t>(n));
  std::iota(ids.begin(), ids.end(), int64_t{0});
  std::vector<int64_t> offsets = {0, n / 3, n / 3, n / 3, 2 * n / 3,
                                  2 * n / 3, 2 * n / 3, 2 * n / 3, n, n, n};
  linalg::Matrix centroids(10, f.ds.dim());
  for (int c = 0; c < 10; ++c) {
    const float* row = f.ds.base.Row((c * 97) % n);
    std::copy(row, row + f.ds.dim(), centroids.Row(c));
  }
  IvfIndex ivf = IvfIndex::FromCsr(n, std::move(centroids),
                                   std::move(offsets), std::move(ids));

  auto sequential = Fixture().Factories()[1].second();  // ddc-pq
  auto batched = Fixture().Factories()[1].second();
  ASSERT_TRUE(ivf.AttachCodesFrom(*batched));
  for (simd::SimdLevel level : f.Levels()) {
    simd::ScopedSimdLevel guard(level);
    std::vector<std::vector<Neighbor>> want;
    for (int64_t q = 0; q < f.ds.queries.rows(); ++q) {
      want.push_back(ivf.Search(*sequential, f.ds.queries.Row(q), 5, 8));
    }
    auto got = ivf.SearchBatch(*batched, f.ds.queries, 5, 8);
    for (std::size_t q = 0; q < want.size(); ++q) {
      ExpectSameResults(want[q], got[q], "empty-buckets q=" + std::to_string(q));
    }
  }
}

TEST(MultiQueryTest, BatchSearchIvfGroupedMatchesPerQuery) {
  // The serving wrapper: grouped workers + centroid ordering must report
  // the same rows, in the caller's query order, as the per-query path —
  // with and without the centroid sort, across thread counts.
  MultiQueryFixture& f = Fixture();
  IvfOptions options;
  options.num_clusters = 24;
  IvfIndex ivf = IvfIndex::Build(f.ds.base, options);
  auto factory = [&f] {
    return std::make_unique<core::DdcAnyComputer>(
        &f.ds.base, std::make_unique<core::PqAdcEstimator>(&f.pq),
        &f.pq_corrector);
  };
  ASSERT_TRUE(ivf.AttachCodesFrom(*factory()));

  BatchOptions per_query;
  per_query.num_threads = 1;
  BatchResult want = BatchSearchIvf(ivf, factory, f.ds.queries, 10, 6,
                                    per_query);
  for (int group_size : {2, 8, 32}) {
    for (int threads : {1, 3}) {
      for (bool sort : {true, false}) {
        BatchOptions grouped;
        grouped.num_threads = threads;
        grouped.group_size = group_size;
        grouped.sort_queries_by_centroid = sort;
        BatchResult got = BatchSearchIvf(ivf, factory, f.ds.queries, 10, 6,
                                         grouped);
        const std::string label = "group=" + std::to_string(group_size) +
                                  " threads=" + std::to_string(threads) +
                                  " sort=" + std::to_string(sort);
        ASSERT_EQ(want.results.size(), got.results.size()) << label;
        for (std::size_t q = 0; q < want.results.size(); ++q) {
          ExpectSameResults(want.results[q], got.results[q],
                            label + " q=" + std::to_string(q));
        }
        ExpectSameStats(want.stats, got.stats, label);
        // Honest latency attribution: every group reports its true wall
        // and size; per-query latency comes only from singleton groups
        // (the tail when group_size divides into the query count with
        // remainder 1), never from divided group walls.
        const int64_t num_queries = f.ds.queries.rows();
        const int64_t num_groups =
            (num_queries + group_size - 1) / group_size;
        const int64_t singleton_groups =
            num_queries % group_size == 1 ? 1 : 0;
        EXPECT_EQ(got.group_latency_seconds.count(), num_groups) << label;
        EXPECT_EQ(got.group_sizes.count(), num_groups) << label;
        EXPECT_DOUBLE_EQ(got.group_sizes.sum(),
                         static_cast<double>(num_queries))
            << label;
        EXPECT_EQ(got.latency_seconds.count(), singleton_groups) << label;
        // Per-worker reporting survives grouping (threads clamp to the
        // number of groups, so size is in [1, threads]).
        EXPECT_GE(static_cast<std::size_t>(threads),
                  got.worker_busy_seconds.size())
            << label;
        EXPECT_FALSE(got.worker_busy_seconds.empty()) << label;
      }
    }
  }
}

}  // namespace
}  // namespace resinfer::index

// Storage-backend scan parity (ctest label: storage-parity).
//
// The PR 10 contract: a v6-saved index serves searches directly from an
// mmap'd file with results AND ComputerStats bit-identical to the memory
// backend, for every estimator route and every supported SIMD level. Both
// backends expose the same bytes at the same 64-byte alignment, so the
// scan kernels cannot tell them apart — this suite is the proof, and the
// CI matrix re-runs it (plus the serving suite) with RESINFER_STORAGE=mmap
// to cover the env-default path end to end.
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/ddc_any.h"
#include "core/training_data.h"
#include "index/batch.h"
#include "index/distance_computer.h"
#include "index/ivf_index.h"
#include "persist/persist.h"
#include "quant/code_store.h"
#include "simd/dispatch.h"
#include "storage/storage.h"
#include "test_util.h"
#include "util/macros.h"

#ifndef RESINFER_SOURCE_DIR
#error "RESINFER_SOURCE_DIR must point at the repository root"
#endif

namespace resinfer::index {
namespace {

using storage::StorageBackend;

constexpr int kK = 10;
constexpr int kNprobe = 6;

// One estimator route under test: how to make a fresh computer whose
// code_tag matches the codes persisted with the index.
struct Route {
  std::string name;
  index::ComputerFactory factory;
};

// Trained artifacts + a v6 file on disk, built once (training dominates
// the suite's runtime). Two routes: a byte-per-code PQ store and a packed
// 4-bit one, so both record layouts cross the mmap boundary.
struct ParityFixture {
  data::Dataset ds = testing::SmallDataset(1200, 32, 1.0, 205, 8, 140);
  core::PqEstimatorData pq_bytes;
  core::PqEstimatorData pq_packed;
  core::LinearCorrector bytes_corrector, packed_corrector;
  std::filesystem::path dir;
  std::string bytes_path, packed_path;

  ParityFixture() {
    index::IvfOptions options;
    options.num_clusters = 16;
    index::IvfIndex ivf = index::IvfIndex::Build(ds.base, options);

    core::TrainingDataOptions training;
    training.max_queries = 60;
    {
      quant::PqOptions pq_options;
      pq_options.num_subspaces = 8;
      pq_options.nbits = 6;
      pq_bytes = core::BuildPqEstimatorData(ds.base, pq_options);
      core::PqAdcEstimator estimator(&pq_bytes);
      bytes_corrector = core::TrainAnyCorrector(estimator, ds.base,
                                                ds.train_queries, training);
    }
    {
      quant::PqOptions pq_options;
      pq_options.num_subspaces = 8;
      pq_options.nbits = 4;
      pq_packed = core::BuildPqEstimatorData(ds.base, pq_options);
      core::PqAdcEstimator estimator(&pq_packed);
      packed_corrector = core::TrainAnyCorrector(estimator, ds.base,
                                                 ds.train_queries, training);
    }

    dir = std::filesystem::temp_directory_path() /
          "resinfer_storage_parity_test";
    std::filesystem::create_directories(dir);
    bytes_path = (dir / "ivf_bytes_v6.bin").string();
    packed_path = (dir / "ivf_packed_v6.bin").string();

    ivf.AttachCodesFrom(*BytesFactory()());
    util::Status s = persist::SaveIvf(bytes_path, ivf);
    RESINFER_CHECK(s.ok());  // lint: allow-check
    ivf.AttachCodesFrom(*PackedFactory()());
    s = persist::SaveIvf(packed_path, ivf);
    RESINFER_CHECK(s.ok());  // lint: allow-check
  }

  index::ComputerFactory BytesFactory() {
    return [this] {
      return std::make_unique<core::DdcAnyComputer>(
          &ds.base, std::make_unique<core::PqAdcEstimator>(&pq_bytes),
          &bytes_corrector);
    };
  }
  index::ComputerFactory PackedFactory() {
    return [this] {
      return std::make_unique<core::DdcAnyComputer>(
          &ds.base, std::make_unique<core::PqAdcEstimator>(&pq_packed),
          &packed_corrector);
    };
  }

  std::vector<Route> Routes() {
    return {{"pq-bytes", BytesFactory()}, {"pq-packed", PackedFactory()}};
  }
  const std::string& PathFor(const Route& route) {
    return route.name == "pq-bytes" ? bytes_path : packed_path;
  }
};

ParityFixture& Fixture() {
  static ParityFixture* fixture = new ParityFixture();
  return *fixture;
}

index::IvfIndex LoadWith(const std::string& path, StorageBackend backend) {
  persist::IvfLoadOptions options;
  options.backend = backend;
  index::IvfIndex ivf;
  util::Status s = persist::LoadIvf(path, &ivf, options);
  EXPECT_TRUE(s.ok()) << path << ": " << s.ToString();
  return ivf;
}

void ExpectSameStats(const ComputerStats& want, const ComputerStats& got,
                     const std::string& label) {
  EXPECT_EQ(want.candidates, got.candidates) << label;
  EXPECT_EQ(want.pruned, got.pruned) << label;
  EXPECT_EQ(want.dims_scanned, got.dims_scanned) << label;
  EXPECT_EQ(want.exact_computations, got.exact_computations) << label;
}

TEST(StorageParityTest, MmapLoadIsAZeroCopyViewOfTheFile) {
  ParityFixture& f = Fixture();
  for (const Route& route : f.Routes()) {
    index::IvfIndex memory = LoadWith(f.PathFor(route),
                                      StorageBackend::kMemory);
    index::IvfIndex mapped = LoadWith(f.PathFor(route),
                                      StorageBackend::kMmap);
    ASSERT_TRUE(memory.has_codes()) << route.name;
    ASSERT_TRUE(mapped.has_codes()) << route.name;

    EXPECT_EQ(memory.codes().storage_backend(), StorageBackend::kMemory);
    EXPECT_EQ(mapped.codes().storage_backend(), StorageBackend::kMmap);
    EXPECT_TRUE(mapped.codes().is_view()) << route.name;

    // Identical bytes, identical layout metadata.
    ASSERT_EQ(memory.codes().data_bytes(), mapped.codes().data_bytes());
    EXPECT_EQ(std::vector<uint8_t>(memory.codes().data(),
                                   memory.codes().data() +
                                       memory.codes().data_bytes()),
              std::vector<uint8_t>(mapped.codes().data(),
                                   mapped.codes().data() +
                                       mapped.codes().data_bytes()))
        << route.name;
    EXPECT_EQ(memory.codes().tag(), mapped.codes().tag());
    EXPECT_EQ(memory.codes().stride(), mapped.codes().stride());
    EXPECT_EQ(memory.codes().packing(), mapped.codes().packing());

    // The v6 pad puts the first record on a 64-byte boundary inside the
    // mapping — the same alignment AllocateAligned gives the heap copy.
    EXPECT_EQ(reinterpret_cast<uintptr_t>(mapped.codes().data()) % 64, 0u)
        << route.name;
  }
}

TEST(StorageParityTest, SearchBitIdenticalAcrossBackendsAtEveryLevel) {
  ParityFixture& f = Fixture();
  for (const Route& route : f.Routes()) {
    index::IvfIndex memory = LoadWith(f.PathFor(route),
                                      StorageBackend::kMemory);
    index::IvfIndex mapped = LoadWith(f.PathFor(route),
                                      StorageBackend::kMmap);
    auto memory_computer = route.factory();
    auto mapped_computer = route.factory();
    // Both indexes must stream code-resident — a silent fall-back to the
    // gather path would make this suite vacuous.
    ASSERT_EQ(memory.codes().tag(), memory_computer->code_tag())
        << route.name;
    ASSERT_EQ(mapped.codes().tag(), mapped_computer->code_tag())
        << route.name;

    for (simd::SimdLevel level : simd::SupportedLevels()) {
      simd::ScopedSimdLevel guard(level);
      for (int64_t q = 0; q < f.ds.queries.rows(); ++q) {
        const std::string label = route.name + " level=" +
                                  simd::SimdLevelName(level) +
                                  " q=" + std::to_string(q);
        memory_computer->stats().Reset();
        mapped_computer->stats().Reset();
        auto want = memory.Search(*memory_computer, f.ds.queries.Row(q),
                                  kK, kNprobe);
        auto got = mapped.Search(*mapped_computer, f.ds.queries.Row(q),
                                 kK, kNprobe);
        ASSERT_EQ(want.size(), got.size()) << label;
        for (std::size_t i = 0; i < want.size(); ++i) {
          ASSERT_EQ(want[i].id, got[i].id) << label << " rank " << i;
          ASSERT_EQ(want[i].distance, got[i].distance)
              << label << " rank " << i;
        }
        ExpectSameStats(memory_computer->stats(), mapped_computer->stats(),
                        label);
      }
    }
  }
}

TEST(StorageParityTest, SearchBatchBitIdenticalAcrossBackends) {
  ParityFixture& f = Fixture();
  for (const Route& route : f.Routes()) {
    index::IvfIndex memory = LoadWith(f.PathFor(route),
                                      StorageBackend::kMemory);
    index::IvfIndex mapped = LoadWith(f.PathFor(route),
                                      StorageBackend::kMmap);
    auto memory_computer = route.factory();
    auto mapped_computer = route.factory();
    for (simd::SimdLevel level : simd::SupportedLevels()) {
      simd::ScopedSimdLevel guard(level);
      memory_computer->stats().Reset();
      mapped_computer->stats().Reset();
      auto want = memory.SearchBatch(*memory_computer, f.ds.queries, kK,
                                     kNprobe);
      auto got = mapped.SearchBatch(*mapped_computer, f.ds.queries, kK,
                                    kNprobe);
      const std::string label =
          route.name + " level=" + simd::SimdLevelName(level);
      ASSERT_EQ(want.size(), got.size()) << label;
      for (std::size_t q = 0; q < want.size(); ++q) {
        ASSERT_EQ(want[q].size(), got[q].size()) << label << " q=" << q;
        for (std::size_t i = 0; i < want[q].size(); ++i) {
          ASSERT_EQ(want[q][i].id, got[q][i].id)
              << label << " q=" << q << " rank " << i;
          ASSERT_EQ(want[q][i].distance, got[q][i].distance)
              << label << " q=" << q << " rank " << i;
        }
      }
      ExpectSameStats(memory_computer->stats(), mapped_computer->stats(),
                      label);
    }
  }
}

TEST(StorageParityTest, EnvironmentDefaultSelectsTheBackend) {
  ParityFixture& f = Fixture();
  const char* saved = std::getenv("RESINFER_STORAGE");
  const std::string restore = saved != nullptr ? saved : "";

  ::setenv("RESINFER_STORAGE", "mmap", 1);
  index::IvfIndex mapped;
  ASSERT_TRUE(persist::LoadIvf(f.bytes_path, &mapped).ok());
  EXPECT_EQ(mapped.codes().storage_backend(), StorageBackend::kMmap);

  ::unsetenv("RESINFER_STORAGE");
  index::IvfIndex memory;
  ASSERT_TRUE(persist::LoadIvf(f.bytes_path, &memory).ok());
  EXPECT_EQ(memory.codes().storage_backend(), StorageBackend::kMemory);

  if (saved != nullptr) ::setenv("RESINFER_STORAGE", restore.c_str(), 1);
}

TEST(StorageParityTest, PreV6FilesFallBackToTheMemoryBackend) {
  // Frozen v5 fixture: the count-prefixed code section cannot be mapped in
  // place, so an mmap request degrades to a heap load and says so via
  // storage_backend() — never an error, never silently different results.
  const std::string path = std::string(RESINFER_SOURCE_DIR) +
                           "/tests/persist/testdata/ivf_v5.bin";
  index::IvfIndex ivf = LoadWith(path, StorageBackend::kMmap);
  ASSERT_TRUE(ivf.has_codes());
  EXPECT_EQ(ivf.codes().storage_backend(), StorageBackend::kMemory);
}

TEST(StorageParityTest, LoadIvfIndexFactoryMatchesTheOutParamForm) {
  ParityFixture& f = Fixture();
  persist::IvfLoadOptions options;
  options.backend = StorageBackend::kMmap;
  auto loaded = persist::LoadIvfIndex(f.bytes_path, options);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().codes().storage_backend(), StorageBackend::kMmap);
  EXPECT_EQ(loaded.value().size(), f.ds.size());

  auto missing = persist::LoadIvfIndex(f.bytes_path + ".missing");
  EXPECT_FALSE(missing.ok());
}

}  // namespace
}  // namespace resinfer::index

// End-to-end integration: the full pipeline of the paper on one synthetic
// dataset — generate data, build both index types, train every method, and
// verify that (a) recall stays near the exact baseline and (b) the DDC
// methods actually reduce work (pruning / scanned dimensions).
#include <gtest/gtest.h>

#include "resinfer/resinfer.h"
#include "test_util.h"

namespace resinfer {
namespace {

class EndToEndTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::SyntheticSpec spec;
    spec.name = "e2e";
    spec.dim = 64;
    spec.num_base = 6000;
    spec.num_queries = 24;
    spec.num_train_queries = 150;
    spec.spectrum_alpha = 1.1;
    // Many moderate clusters: a handful of far-apart clusters makes the
    // residual error distribution far more multimodal (heavier-tailed)
    // than any of the paper's real datasets, which is exactly the regime
    // §IV-C's Gaussian bound is not meant for.
    spec.num_clusters = 64;
    spec.cluster_spread = 1.0;
    spec.seed = 7777;
    dataset_ = new data::Dataset(data::GenerateSynthetic(spec));

    core::FactoryOptions options;
    options.ddc_res.init_dim = 16;
    options.ddc_res.delta_dim = 16;
    options.ddc_pca.init_dim = 16;
    options.ddc_pca.delta_dim = 24;
    options.ddc_pca.training.max_queries = 100;
    options.ddc_pca.training.k = 20;
    options.ddc_opq.opq.pq.num_subspaces = 16;
    options.ddc_opq.opq.pq.nbits = 6;
    options.ddc_opq.opq.num_iterations = 2;
    options.ddc_opq.training.max_queries = 100;
    options.ddc_opq.training.k = 20;
    factory_ = new core::MethodFactory(dataset_, options);

    index::HnswOptions hnsw;
    hnsw.M = 12;
    hnsw.ef_construction = 80;
    hnsw_ = new index::HnswIndex(index::HnswIndex::Build(dataset_->base,
                                                         hnsw));
    index::IvfOptions ivf;
    ivf.num_clusters = 48;
    ivf_ = new index::IvfIndex(index::IvfIndex::Build(dataset_->base, ivf));

    truth_ = new std::vector<std::vector<int64_t>>(
        data::BruteForceKnn(dataset_->base, dataset_->queries, 20));
  }

  static void TearDownTestSuite() {
    delete truth_;
    delete ivf_;
    delete hnsw_;
    delete factory_;
    delete dataset_;
  }

  double HnswRecall(index::DistanceComputer& computer, int ef) {
    std::vector<std::vector<int64_t>> results;
    index::HnswScratch scratch;
    for (int64_t q = 0; q < dataset_->queries.rows(); ++q) {
      auto found =
          hnsw_->Search(computer, dataset_->queries.Row(q), 20, ef, &scratch);
      std::vector<int64_t> ids;
      for (const auto& nb : found) ids.push_back(nb.id);
      results.push_back(std::move(ids));
    }
    return data::MeanRecallAtK(results, *truth_, 20);
  }

  double IvfRecall(index::DistanceComputer& computer, int nprobe) {
    std::vector<std::vector<int64_t>> results;
    for (int64_t q = 0; q < dataset_->queries.rows(); ++q) {
      auto found =
          ivf_->Search(computer, dataset_->queries.Row(q), 20, nprobe);
      std::vector<int64_t> ids;
      for (const auto& nb : found) ids.push_back(nb.id);
      results.push_back(std::move(ids));
    }
    return data::MeanRecallAtK(results, *truth_, 20);
  }

  static data::Dataset* dataset_;
  static core::MethodFactory* factory_;
  static index::HnswIndex* hnsw_;
  static index::IvfIndex* ivf_;
  static std::vector<std::vector<int64_t>>* truth_;
};

data::Dataset* EndToEndTest::dataset_ = nullptr;
core::MethodFactory* EndToEndTest::factory_ = nullptr;
index::HnswIndex* EndToEndTest::hnsw_ = nullptr;
index::IvfIndex* EndToEndTest::ivf_ = nullptr;
std::vector<std::vector<int64_t>>* EndToEndTest::truth_ = nullptr;

TEST_F(EndToEndTest, HnswRecallPerMethodTracksExact) {
  auto exact = factory_->Make(core::kMethodExact);
  double exact_recall = HnswRecall(*exact, 128);
  ASSERT_GT(exact_recall, 0.9);

  for (const std::string name :
       {core::kMethodAdSampling, core::kMethodDdcRes, core::kMethodDdcPca,
        core::kMethodDdcOpq}) {
    auto computer = factory_->Make(name);
    double recall = HnswRecall(*computer, 128);
    EXPECT_GT(recall, exact_recall - 0.05) << name;
  }
}

TEST_F(EndToEndTest, IvfRecallPerMethodTracksExact) {
  auto exact = factory_->Make(core::kMethodExact);
  double exact_recall = IvfRecall(*exact, 12);
  ASSERT_GT(exact_recall, 0.85);

  for (const std::string name :
       {core::kMethodAdSampling, core::kMethodDdcRes, core::kMethodDdcPca,
        core::kMethodDdcOpq}) {
    auto computer = factory_->Make(name);
    double recall = IvfRecall(*computer, 12);
    EXPECT_GT(recall, exact_recall - 0.05) << name;
  }
}

TEST_F(EndToEndTest, DdcResScansFewerDimsThanAdSampling) {
  // The paper's Exp-6 headline: DDCres scans a much smaller fraction of
  // dimensions than ADSampling at equal search settings.
  auto ads = factory_->Make(core::kMethodAdSampling);
  auto res = factory_->Make(core::kMethodDdcRes);
  IvfRecall(*ads, 12);
  IvfRecall(*res, 12);
  double ads_scan = ads->stats().ScanRate(dataset_->dim());
  double res_scan = res->stats().ScanRate(dataset_->dim());
  EXPECT_LT(res_scan, ads_scan);
}

TEST_F(EndToEndTest, DdcOpqPrunesMostCandidates) {
  auto opq = factory_->Make(core::kMethodDdcOpq);
  IvfRecall(*opq, 12);
  EXPECT_GT(opq->stats().PrunedRate(), 0.5);
}

TEST_F(EndToEndTest, PreprocessingCostsReported) {
  // Trigger all artifact builds, then check cost accounting.
  factory_->Make(core::kMethodDdcRes);
  factory_->Make(core::kMethodDdcPca);
  factory_->Make(core::kMethodDdcOpq);
  const core::PreprocessCosts& costs = factory_->costs();
  EXPECT_GT(costs.pca_seconds, 0.0);
  EXPECT_GT(costs.ddc_pca_train_seconds, 0.0);
  EXPECT_GT(costs.opq_seconds, 0.0);
  EXPECT_GT(costs.ddc_res_bytes, 0);
}

TEST_F(EndToEndTest, GenericBackendsWorkInsideIvf) {
  // The §V generality plug-in must behave like the built-in methods inside
  // the IVF refinement loop: recall near exact, real pruning.
  quant::RqOptions rq_options;
  rq_options.num_stages = 4;
  rq_options.nbits = 6;
  core::RqEstimatorData rq =
      core::BuildRqEstimatorData(dataset_->base, rq_options);
  core::TrainingDataOptions training;
  training.max_queries = 100;
  training.k = 20;
  core::RqAdcEstimator trainer(&rq);
  core::LinearCorrector corrector = core::TrainAnyCorrector(
      trainer, dataset_->base, dataset_->train_queries, training);

  core::DdcAnyComputer computer(
      &dataset_->base, std::make_unique<core::RqAdcEstimator>(&rq),
      &corrector);
  auto exact = factory_->Make(core::kMethodExact);
  const double exact_recall = IvfRecall(*exact, 12);
  const double any_recall = IvfRecall(computer, 12);
  EXPECT_GE(any_recall, exact_recall - 0.03);
  EXPECT_GT(computer.stats().PrunedRate(), 0.3);
}

TEST_F(EndToEndTest, RqCascadeWorksInsideIvf) {
  core::DdcRqCascadeOptions options;
  options.rq.nbits = 6;
  options.levels = {2, 4};
  options.training.max_queries = 100;
  options.training.k = 20;
  core::DdcRqCascadeArtifacts artifacts = core::TrainDdcRqCascade(
      dataset_->base, dataset_->train_queries, options);
  core::DdcRqCascadeComputer computer(&dataset_->base, &artifacts);
  auto exact = factory_->Make(core::kMethodExact);
  const double exact_recall = IvfRecall(*exact, 12);
  const double cascade_recall = IvfRecall(computer, 12);
  EXPECT_GE(cascade_recall, exact_recall - 0.03);
  EXPECT_GT(computer.stats().PrunedRate(), 0.3);
}

TEST_F(EndToEndTest, BatchSearchIsDeterministicAcrossThreadCounts) {
  // A learned method behind the batch runner must return identical result
  // lists no matter how many workers execute the queries.
  index::BatchOptions one;
  one.num_threads = 1;
  index::BatchOptions four;
  four.num_threads = 4;
  auto factory_fn = [this] { return factory_->Make(core::kMethodDdcRes); };
  index::BatchResult a = index::BatchSearchHnsw(
      *hnsw_, factory_fn, dataset_->queries, 20, 80, one);
  index::BatchResult b = index::BatchSearchHnsw(
      *hnsw_, factory_fn, dataset_->queries, 20, 80, four);
  ASSERT_EQ(a.results.size(), b.results.size());
  for (std::size_t q = 0; q < a.results.size(); ++q) {
    ASSERT_EQ(a.results[q].size(), b.results[q].size());
    for (std::size_t r = 0; r < a.results[q].size(); ++r) {
      EXPECT_EQ(a.results[q][r].id, b.results[q][r].id);
    }
  }
}

TEST_F(EndToEndTest, MipsReductionServedByDdcRes) {
  // Inner-product search through the §II-A augmentation, indexed by HNSW
  // and accelerated by DDCres trained on the augmented space.
  data::MipsTransform mips = data::MipsTransform::Fit(dataset_->base);
  linalg::Matrix items = mips.TransformBase(dataset_->base);
  linalg::Matrix users = mips.TransformQueries(dataset_->queries);

  data::Dataset augmented;
  augmented.name = "e2e-mips";
  augmented.base = items.Clone();
  augmented.queries = users.Clone();
  augmented.train_queries =
      mips.TransformQueries(dataset_->train_queries);
  core::MethodFactory factory(&augmented);
  auto ddc = factory.Make(core::kMethodDdcRes);

  index::HnswOptions hnsw_options;
  hnsw_options.ef_construction = 80;
  index::HnswIndex hnsw = index::HnswIndex::Build(augmented.base,
                                                  hnsw_options);
  double recall_sum = 0.0;
  for (int64_t u = 0; u < augmented.queries.rows(); ++u) {
    std::vector<data::Neighbor> exact_top = data::TopKByInnerProduct(
        dataset_->base, dataset_->queries.Row(u), 10);
    std::vector<int64_t> truth;
    for (const auto& nb : exact_top) truth.push_back(nb.id);
    auto found = hnsw.Search(*ddc, augmented.queries.Row(u), 10, 100);
    std::vector<int64_t> ids;
    for (const auto& nb : found) ids.push_back(nb.id);
    recall_sum += data::RecallAtK(ids, truth, 10);
  }
  EXPECT_GE(recall_sum / static_cast<double>(augmented.queries.rows()),
            0.85);
}

}  // namespace
}  // namespace resinfer

#include "linalg/covariance.h"

#include <gtest/gtest.h>

#include "test_util.h"
#include "util/rng.h"

namespace resinfer::linalg {
namespace {

TEST(CovarianceTest, KnownSmallSample) {
  // Points: (0,0), (2,0), (0,2), (2,2) -> mean (1,1),
  // cov = [[1,0],[0,1]] (population).
  float data[] = {0, 0, 2, 0, 0, 2, 2, 2};
  MeanCovariance mc = ComputeMeanCovariance(data, 4, 2);
  EXPECT_FLOAT_EQ(mc.mean[0], 1.0f);
  EXPECT_FLOAT_EQ(mc.mean[1], 1.0f);
  EXPECT_NEAR(mc.covariance.At(0, 0), 1.0f, 1e-6f);
  EXPECT_NEAR(mc.covariance.At(1, 1), 1.0f, 1e-6f);
  EXPECT_NEAR(mc.covariance.At(0, 1), 0.0f, 1e-6f);
}

TEST(CovarianceTest, CorrelatedDimensions) {
  // y = 2x exactly: cov(x,y) = 2 var(x), var(y) = 4 var(x).
  Rng rng(70);
  constexpr int64_t kN = 5000;
  std::vector<float> data(kN * 2);
  for (int64_t i = 0; i < kN; ++i) {
    float x = static_cast<float>(rng.Gaussian());
    data[i * 2] = x;
    data[i * 2 + 1] = 2.0f * x;
  }
  MeanCovariance mc = ComputeMeanCovariance(data.data(), kN, 2);
  float var_x = mc.covariance.At(0, 0);
  EXPECT_NEAR(mc.covariance.At(0, 1), 2.0f * var_x, 0.02f);
  EXPECT_NEAR(mc.covariance.At(1, 1), 4.0f * var_x, 0.05f);
}

TEST(CovarianceTest, SymmetricOutput) {
  linalg::Matrix data = testing::RandomMatrix(500, 12, 71);
  MeanCovariance mc = ComputeMeanCovariance(data.data(), 500, 12);
  for (int64_t i = 0; i < 12; ++i)
    for (int64_t j = 0; j < 12; ++j)
      EXPECT_EQ(mc.covariance.At(i, j), mc.covariance.At(j, i));
}

TEST(CovarianceTest, SingleRowHasZeroCovariance) {
  float data[] = {1.0f, 2.0f, 3.0f};
  MeanCovariance mc = ComputeMeanCovariance(data, 1, 3);
  EXPECT_FLOAT_EQ(mc.mean[1], 2.0f);
  for (int64_t i = 0; i < 3; ++i)
    for (int64_t j = 0; j < 3; ++j)
      EXPECT_EQ(mc.covariance.At(i, j), 0.0f);
}

}  // namespace
}  // namespace resinfer::linalg

#include "linalg/eigen.h"

#include <cmath>

#include <gtest/gtest.h>

#include "test_util.h"

namespace resinfer::linalg {
namespace {

// Checks A v_i = lambda_i v_i for every pair.
void ExpectEigenPairsValid(const Matrix& a, const SymmetricEigenResult& eig,
                           double tol) {
  const int64_t n = a.rows();
  std::vector<float> av(n);
  for (int64_t i = 0; i < n; ++i) {
    MatVec(a, eig.eigenvectors.Row(i), av.data());
    for (int64_t j = 0; j < n; ++j) {
      EXPECT_NEAR(av[j], eig.eigenvalues[i] * eig.eigenvectors.At(i, j), tol)
          << "pair " << i << " component " << j;
    }
  }
}

TEST(EigenTest, DiagonalMatrix) {
  Matrix a(3, 3);
  a.At(0, 0) = 1.0f;
  a.At(1, 1) = 5.0f;
  a.At(2, 2) = 3.0f;
  SymmetricEigenResult eig = SymmetricEigen(a);
  EXPECT_NEAR(eig.eigenvalues[0], 5.0, 1e-6);
  EXPECT_NEAR(eig.eigenvalues[1], 3.0, 1e-6);
  EXPECT_NEAR(eig.eigenvalues[2], 1.0, 1e-6);
  ExpectEigenPairsValid(a, eig, 1e-5);
}

TEST(EigenTest, Known2x2) {
  // [[2,1],[1,2]] has eigenvalues 3 and 1.
  Matrix a(2, 2);
  a.At(0, 0) = 2;
  a.At(0, 1) = 1;
  a.At(1, 0) = 1;
  a.At(1, 1) = 2;
  SymmetricEigenResult eig = SymmetricEigen(a);
  EXPECT_NEAR(eig.eigenvalues[0], 3.0, 1e-6);
  EXPECT_NEAR(eig.eigenvalues[1], 1.0, 1e-6);
}

TEST(EigenTest, OneByOne) {
  Matrix a(1, 1);
  a.At(0, 0) = -4.0f;
  SymmetricEigenResult eig = SymmetricEigen(a);
  EXPECT_NEAR(eig.eigenvalues[0], -4.0, 1e-9);
  EXPECT_NEAR(std::abs(eig.eigenvectors.At(0, 0)), 1.0, 1e-9);
}

TEST(EigenTest, EigenvectorsOrthonormal) {
  Matrix a = testing::RandomSymmetric(20, 31);
  SymmetricEigenResult eig = SymmetricEigen(a);
  for (int64_t i = 0; i < 20; ++i) {
    for (int64_t j = i; j < 20; ++j) {
      double dot = 0.0;
      for (int64_t k = 0; k < 20; ++k)
        dot += static_cast<double>(eig.eigenvectors.At(i, k)) *
               eig.eigenvectors.At(j, k);
      EXPECT_NEAR(dot, i == j ? 1.0 : 0.0, 1e-5);
    }
  }
}

TEST(EigenTest, EigenvaluesSortedDescending) {
  Matrix a = testing::RandomSymmetric(15, 32);
  SymmetricEigenResult eig = SymmetricEigen(a);
  for (std::size_t i = 1; i < eig.eigenvalues.size(); ++i) {
    EXPECT_GE(eig.eigenvalues[i - 1], eig.eigenvalues[i]);
  }
}

TEST(EigenTest, TraceAndReconstruction) {
  Matrix a = testing::RandomSymmetric(12, 33);
  SymmetricEigenResult eig = SymmetricEigen(a);
  double trace = 0.0, eigsum = 0.0;
  for (int64_t i = 0; i < 12; ++i) trace += a.At(i, i);
  for (double v : eig.eigenvalues) eigsum += v;
  EXPECT_NEAR(trace, eigsum, 1e-4);
  ExpectEigenPairsValid(a, eig, 2e-4);
}

// Property sweep over sizes, including repeated-eigenvalue cases.
class EigenSizeTest : public ::testing::TestWithParam<int> {};

TEST_P(EigenSizeTest, RandomSymmetric) {
  const int n = GetParam();
  Matrix a = testing::RandomSymmetric(n, 100 + n);
  SymmetricEigenResult eig = SymmetricEigen(a);
  ExpectEigenPairsValid(a, eig, 5e-4 * std::sqrt(static_cast<double>(n)));
}

TEST_P(EigenSizeTest, IdentityHasRepeatedUnitEigenvalues) {
  const int n = GetParam();
  Matrix id = Matrix::Identity(n);
  SymmetricEigenResult eig = SymmetricEigen(id);
  for (double v : eig.eigenvalues) EXPECT_NEAR(v, 1.0, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Sizes, EigenSizeTest,
                         ::testing::Values(2, 3, 5, 8, 16, 33, 64));

}  // namespace
}  // namespace resinfer::linalg

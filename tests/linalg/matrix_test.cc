#include "linalg/matrix.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace resinfer::linalg {
namespace {

TEST(MatrixTest, ConstructionZeroInitialized) {
  Matrix m(3, 4);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 4);
  for (int64_t i = 0; i < m.size(); ++i) EXPECT_EQ(m.data()[i], 0.0f);
}

TEST(MatrixTest, IdentityAndMatMul) {
  Matrix a = testing::RandomMatrix(5, 5, 21);
  Matrix id = Matrix::Identity(5);
  Matrix left = MatMul(id, a);
  Matrix right = MatMul(a, id);
  EXPECT_LT(MaxAbsDifference(left, a), 1e-6);
  EXPECT_LT(MaxAbsDifference(right, a), 1e-6);
}

TEST(MatrixTest, MatMulKnownValues) {
  Matrix a(2, 3);
  Matrix b(3, 2);
  // a = [1 2 3; 4 5 6], b = [7 8; 9 10; 11 12]
  float av[] = {1, 2, 3, 4, 5, 6};
  float bv[] = {7, 8, 9, 10, 11, 12};
  std::copy(av, av + 6, a.data());
  std::copy(bv, bv + 6, b.data());
  Matrix c = MatMul(a, b);
  EXPECT_FLOAT_EQ(c.At(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c.At(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c.At(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c.At(1, 1), 154.0f);
}

TEST(MatrixTest, MatMulBtEquivalentToExplicitTranspose) {
  Matrix a = testing::RandomMatrix(7, 9, 22);
  Matrix b = testing::RandomMatrix(5, 9, 23);
  Matrix via_bt = MatMulBt(a, b);
  Matrix via_mul = MatMul(a, b.Transposed());
  EXPECT_LT(MaxAbsDifference(via_bt, via_mul), 1e-5);
}

TEST(MatrixTest, TransposedTwiceIsIdentity) {
  Matrix a = testing::RandomMatrix(4, 6, 24);
  Matrix t2 = a.Transposed().Transposed();
  EXPECT_LT(MaxAbsDifference(a, t2), 0.0 + 1e-9);
}

TEST(MatrixTest, MatVec) {
  Matrix a(2, 3);
  float av[] = {1, 2, 3, 4, 5, 6};
  std::copy(av, av + 6, a.data());
  float x[] = {1, 0, -1};
  float out[2];
  MatVec(a, x, out);
  EXPECT_FLOAT_EQ(out[0], -2.0f);
  EXPECT_FLOAT_EQ(out[1], -2.0f);
}

TEST(MatrixTest, CloneIsDeep) {
  Matrix a = testing::RandomMatrix(3, 3, 25);
  Matrix b = a.Clone();
  b.At(0, 0) += 1.0f;
  EXPECT_NE(a.At(0, 0), b.At(0, 0));
}

TEST(MatrixTest, FrobeniusDistance) {
  Matrix a(2, 2), b(2, 2);
  b.At(0, 0) = 3.0f;
  b.At(1, 1) = 4.0f;
  EXPECT_NEAR(a.FrobeniusDistance(b), 5.0, 1e-6);
}

}  // namespace
}  // namespace resinfer::linalg

#include "linalg/orthogonal.h"

#include <cmath>

#include <gtest/gtest.h>

#include "linalg/matrix.h"
#include "simd/kernels.h"
#include "util/rng.h"

namespace resinfer::linalg {
namespace {

class RandomOrthonormalTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomOrthonormalTest, RowsOrthonormal) {
  Rng rng(50 + GetParam());
  Matrix r = RandomOrthonormal(GetParam(), rng);
  EXPECT_LT(OrthonormalityError(r), 1e-5);
}

TEST_P(RandomOrthonormalTest, PreservesNorms) {
  const int d = GetParam();
  Rng rng(60);
  Matrix r = RandomOrthonormal(d, rng);
  std::vector<float> x(d), y(d);
  for (auto& v : x) v = static_cast<float>(rng.Gaussian());
  MatVec(r, x.data(), y.data());
  float nx = simd::Norm2Sqr(x.data(), d);
  float ny = simd::Norm2Sqr(y.data(), d);
  EXPECT_NEAR(ny, nx, 1e-3f * (1.0f + nx));
}

TEST_P(RandomOrthonormalTest, PreservesDistances) {
  const int d = GetParam();
  Rng rng(61);
  Matrix r = RandomOrthonormal(d, rng);
  std::vector<float> a(d), b(d), ra(d), rb(d);
  for (auto& v : a) v = static_cast<float>(rng.Gaussian());
  for (auto& v : b) v = static_cast<float>(rng.Gaussian());
  MatVec(r, a.data(), ra.data());
  MatVec(r, b.data(), rb.data());
  float orig = simd::L2Sqr(a.data(), b.data(), d);
  float rot = simd::L2Sqr(ra.data(), rb.data(), d);
  EXPECT_NEAR(rot, orig, 1e-3f * (1.0f + orig));
}

INSTANTIATE_TEST_SUITE_P(Dims, RandomOrthonormalTest,
                         ::testing::Values(1, 2, 4, 16, 33, 64, 128));

TEST(RandomOrthonormalTest, DeterministicInSeed) {
  Rng rng1(77), rng2(77);
  Matrix a = RandomOrthonormal(16, rng1);
  Matrix b = RandomOrthonormal(16, rng2);
  EXPECT_EQ(MaxAbsDifference(a, b), 0.0);
}

TEST(RandomOrthonormalTest, DifferentSeedsDiffer) {
  Rng rng1(1), rng2(2);
  Matrix a = RandomOrthonormal(16, rng1);
  Matrix b = RandomOrthonormal(16, rng2);
  EXPECT_GT(MaxAbsDifference(a, b), 1e-3);
}

}  // namespace
}  // namespace resinfer::linalg

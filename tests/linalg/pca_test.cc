#include "linalg/pca.h"

#include <cmath>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "linalg/covariance.h"
#include "linalg/orthogonal.h"
#include "simd/kernels.h"
#include "test_util.h"

namespace resinfer::linalg {
namespace {

data::Dataset MakeData() { return testing::SmallDataset(3000, 32, 1.0, 9); }

TEST(PcaTest, RotationIsOrthonormal) {
  data::Dataset ds = MakeData();
  PcaModel pca = PcaModel::Fit(ds.base.data(), ds.size(), ds.dim());
  EXPECT_LT(OrthonormalityError(pca.rotation()), 1e-3);
}

TEST(PcaTest, VariancesDescendAndNonNegative) {
  data::Dataset ds = MakeData();
  PcaModel pca = PcaModel::Fit(ds.base.data(), ds.size(), ds.dim());
  const auto& v = pca.variances();
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_GE(v[i], 0.0f);
    if (i > 0) {
      EXPECT_GE(v[i - 1], v[i] - 1e-5f);
    }
  }
}

TEST(PcaTest, SuffixVarianceConsistent) {
  data::Dataset ds = MakeData();
  PcaModel pca = PcaModel::Fit(ds.base.data(), ds.size(), ds.dim());
  const auto& v = pca.variances();
  const auto& suffix = pca.suffix_variance();
  ASSERT_EQ(suffix.size(), v.size() + 1);
  EXPECT_EQ(suffix.back(), 0.0f);
  for (int64_t d = 0; d < pca.dim(); ++d) {
    double manual = 0.0;
    for (int64_t i = d; i < pca.dim(); ++i) manual += v[i];
    EXPECT_NEAR(suffix[d], manual, 1e-3 * (1.0 + manual));
  }
}

TEST(PcaTest, TransformPreservesPairwiseDistances) {
  data::Dataset ds = MakeData();
  PcaModel pca = PcaModel::Fit(ds.base.data(), ds.size(), ds.dim());
  std::vector<float> ta(ds.dim()), tb(ds.dim());
  for (int64_t i = 0; i < 10; ++i) {
    const float* a = ds.base.Row(i);
    const float* b = ds.base.Row(i + 100);
    pca.Transform(a, ta.data());
    pca.Transform(b, tb.data());
    float orig = simd::L2Sqr(a, b, ds.dim());
    float rot = simd::L2Sqr(ta.data(), tb.data(), ds.dim());
    EXPECT_NEAR(rot, orig, 1e-3f * (1.0f + orig));
  }
}

TEST(PcaTest, TransformedDataHasDiagonalCovariance) {
  data::Dataset ds = MakeData();
  PcaModel pca = PcaModel::Fit(ds.base.data(), ds.size(), ds.dim());
  Matrix rotated = pca.TransformBatch(ds.base.data(), ds.size());
  // First dimension variance should match the top eigenvalue and dominate.
  const int64_t n = ds.size();
  double var0 = 0.0, cov01 = 0.0, mean0 = 0.0, mean1 = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    mean0 += rotated.At(i, 0);
    mean1 += rotated.At(i, 1);
  }
  mean0 /= n;
  mean1 /= n;
  for (int64_t i = 0; i < n; ++i) {
    double c0 = rotated.At(i, 0) - mean0;
    double c1 = rotated.At(i, 1) - mean1;
    var0 += c0 * c0;
    cov01 += c0 * c1;
  }
  var0 /= n;
  cov01 /= n;
  EXPECT_NEAR(var0, pca.variances()[0], 0.05 * pca.variances()[0]);
  EXPECT_LT(std::abs(cov01), 0.05 * var0);  // decorrelated
}

TEST(PcaTest, ExplainedVarianceRatioMonotonic) {
  data::Dataset ds = MakeData();
  PcaModel pca = PcaModel::Fit(ds.base.data(), ds.size(), ds.dim());
  double prev = 0.0;
  for (int64_t k = 0; k <= pca.dim(); ++k) {
    double evr = pca.ExplainedVarianceRatio(k);
    EXPECT_GE(evr, prev - 1e-9);
    prev = evr;
  }
  EXPECT_NEAR(pca.ExplainedVarianceRatio(pca.dim()), 1.0, 1e-6);
  EXPECT_EQ(pca.ExplainedVarianceRatio(0), 0.0);
}

TEST(PcaTest, PcaBeatsArbitraryBasisOnSkewedData) {
  // Theorem 1: the PCA basis captures at least as much top-k variance as
  // the identity (or any other orthogonal) basis.
  data::Dataset ds = testing::SmallDataset(3000, 24, 1.5, 10);
  PcaModel pca = PcaModel::Fit(ds.base.data(), ds.size(), ds.dim());
  // Variance captured by first 4 identity coordinates:
  MeanCovariance mc =
      ComputeMeanCovariance(ds.base.data(), ds.size(), ds.dim());
  double id_top = 0.0, total = 0.0;
  for (int64_t i = 0; i < ds.dim(); ++i) {
    total += mc.covariance.At(i, i);
    if (i < 4) id_top += mc.covariance.At(i, i);
  }
  double pca_top = pca.ExplainedVarianceRatio(4) * total;
  EXPECT_GE(pca_top, id_top - 1e-3 * total);
}

TEST(PcaTest, SubsampledFitCloseToFullFit) {
  data::Dataset ds = MakeData();
  PcaModel full = PcaModel::Fit(ds.base.data(), ds.size(), ds.dim());
  PcaOptions options;
  options.max_train_rows = 500;
  PcaModel sub = PcaModel::Fit(ds.base.data(), ds.size(), ds.dim(), options);
  // Eigen-spectra should be close even from a 500-row sample.
  for (int64_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(sub.variances()[i], full.variances()[i],
                0.25 * full.variances()[i] + 1e-3);
  }
}

TEST(PcaTest, NoCenteringOption) {
  data::Dataset ds = MakeData();
  PcaOptions options;
  options.center = false;
  PcaModel pca =
      PcaModel::Fit(ds.base.data(), ds.size(), ds.dim(), options);
  for (float m : pca.mean()) EXPECT_EQ(m, 0.0f);
}

}  // namespace
}  // namespace resinfer::linalg

#include "linalg/svd.h"

#include <cmath>

#include <gtest/gtest.h>

#include "linalg/orthogonal.h"
#include "test_util.h"
#include "util/rng.h"

namespace resinfer::linalg {
namespace {

// ||A - U S V^T||_F should be tiny relative to ||A||_F.
void ExpectReconstructs(const Matrix& a, const SvdResult& svd, double tol) {
  const int64_t m = a.rows(), n = a.cols();
  double err = 0.0, norm = 0.0;
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      double rec = 0.0;
      for (int64_t k = 0; k < n; ++k)
        rec += static_cast<double>(svd.u.At(i, k)) * svd.singular_values[k] *
               svd.v.At(j, k);
      double d = rec - a.At(i, j);
      err += d * d;
      norm += static_cast<double>(a.At(i, j)) * a.At(i, j);
    }
  }
  EXPECT_LT(std::sqrt(err), tol * (1.0 + std::sqrt(norm)));
}

void ExpectColumnsOrthonormal(const Matrix& u, double tol) {
  for (int64_t i = 0; i < u.cols(); ++i) {
    for (int64_t j = i; j < u.cols(); ++j) {
      double dot = 0.0;
      for (int64_t r = 0; r < u.rows(); ++r)
        dot += static_cast<double>(u.At(r, i)) * u.At(r, j);
      EXPECT_NEAR(dot, i == j ? 1.0 : 0.0, tol);
    }
  }
}

TEST(SvdTest, SquareRandom) {
  Matrix a = testing::RandomMatrix(12, 12, 41);
  SvdResult svd = Svd(a);
  ExpectReconstructs(a, svd, 1e-3);
  ExpectColumnsOrthonormal(svd.u, 1e-4);
  ExpectColumnsOrthonormal(svd.v, 1e-4);
  for (std::size_t i = 1; i < svd.singular_values.size(); ++i)
    EXPECT_GE(svd.singular_values[i - 1], svd.singular_values[i]);
}

TEST(SvdTest, TallRandom) {
  Matrix a = testing::RandomMatrix(30, 8, 42);
  SvdResult svd = Svd(a);
  ExpectReconstructs(a, svd, 1e-3);
  ExpectColumnsOrthonormal(svd.u, 1e-4);
}

TEST(SvdTest, RankDeficient) {
  // Rank-1 matrix: outer product.
  Matrix a(10, 4);
  Rng rng(43);
  std::vector<float> u(10), v(4);
  for (auto& x : u) x = static_cast<float>(rng.Gaussian());
  for (auto& x : v) x = static_cast<float>(rng.Gaussian());
  for (int64_t i = 0; i < 10; ++i)
    for (int64_t j = 0; j < 4; ++j) a.At(i, j) = u[i] * v[j];

  SvdResult svd = Svd(a);
  // One dominant singular value, the rest ~0; U still fully orthonormal
  // thanks to basis completion.
  EXPECT_GT(svd.singular_values[0], 1e-3);
  for (std::size_t i = 1; i < svd.singular_values.size(); ++i)
    EXPECT_LT(svd.singular_values[i], 1e-3 * svd.singular_values[0]);
  ExpectColumnsOrthonormal(svd.u, 1e-4);
  ExpectReconstructs(a, svd, 1e-3);
}

TEST(SvdTest, ProcrustesRecoversRotation) {
  // M = R0 exactly: the closest orthogonal matrix to an orthogonal matrix
  // is itself.
  Rng rng(44);
  Matrix r0 = RandomOrthonormal(10, rng);
  Matrix recovered = ProcrustesRotation(r0);
  EXPECT_LT(MaxAbsDifference(r0, recovered), 1e-3);
}

TEST(SvdTest, ProcrustesOutputIsOrthogonal) {
  Matrix m = testing::RandomMatrix(9, 9, 45);
  Matrix r = ProcrustesRotation(m);
  EXPECT_LT(OrthonormalityError(r), 1e-4);
}

TEST(SvdTest, ProcrustesMaximizesTraceAgainstRandomRotations) {
  // ProcrustesRotation maximizes trace(R^T M) (equivalently minimizes
  // ||R - M||_F over orthogonal R).
  Matrix m = testing::RandomMatrix(6, 6, 46);
  Matrix best = ProcrustesRotation(m);
  auto trace_rt_m = [&](const Matrix& r) {
    double t = 0.0;
    for (int64_t i = 0; i < 6; ++i)
      for (int64_t k = 0; k < 6; ++k)
        t += static_cast<double>(r.At(k, i)) * m.At(k, i);
    return t;
  };
  double best_trace = trace_rt_m(best);
  Rng rng(47);
  for (int trial = 0; trial < 20; ++trial) {
    Matrix r = RandomOrthonormal(6, rng);
    EXPECT_LE(trace_rt_m(r), best_trace + 1e-3);
  }
}

}  // namespace
}  // namespace resinfer::linalg

#include "linalg/vector_ops.h"

#include <cmath>

#include <gtest/gtest.h>

#include "simd/kernels.h"

namespace resinfer::linalg {
namespace {

TEST(VectorOpsTest, SubtractAdd) {
  const float a[3] = {5, 7, 9};
  const float b[3] = {1, 2, 3};
  float out[3];
  Subtract(a, b, out, 3);
  EXPECT_FLOAT_EQ(out[0], 4);
  EXPECT_FLOAT_EQ(out[1], 5);
  EXPECT_FLOAT_EQ(out[2], 6);
  Add(out, b, out, 3);
  EXPECT_FLOAT_EQ(out[0], 5);
  EXPECT_FLOAT_EQ(out[2], 9);
}

TEST(VectorOpsTest, NormalizeL2) {
  float v[4] = {3, 0, 4, 0};
  NormalizeL2(v, 4);
  EXPECT_NEAR(simd::Norm2Sqr(v, 4), 1.0f, 1e-6f);
  EXPECT_NEAR(v[0], 0.6f, 1e-6f);
  EXPECT_NEAR(v[2], 0.8f, 1e-6f);
}

TEST(VectorOpsTest, NormalizeZeroVectorIsNoop) {
  float v[3] = {0, 0, 0};
  NormalizeL2(v, 3);
  for (float x : v) EXPECT_EQ(x, 0.0f);
}

TEST(VectorOpsTest, MeanVar) {
  MeanVar mv = ComputeMeanVar({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(mv.mean, 2.5);
  EXPECT_DOUBLE_EQ(mv.variance, 1.25);
  MeanVar empty = ComputeMeanVar({});
  EXPECT_EQ(empty.mean, 0.0);
  EXPECT_EQ(empty.variance, 0.0);
}

TEST(VectorOpsTest, EmpiricalQuantile) {
  std::vector<double> v = {4.0, 1.0, 3.0, 2.0};  // sorted: 1 2 3 4
  EXPECT_DOUBLE_EQ(EmpiricalQuantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(EmpiricalQuantile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(EmpiricalQuantile(v, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(EmpiricalQuantile({42.0}, 0.7), 42.0);
}

TEST(VectorOpsTest, DotDouble) {
  const float a[2] = {1e8f, 1.0f};
  const float b[2] = {1.0f, 1.0f};
  EXPECT_DOUBLE_EQ(DotDouble(a, b, 2), 1e8 + 1.0);
}

}  // namespace
}  // namespace resinfer::linalg

// Randomized corruption suite (the fault-injection harness of
// docs/persistence.md): every format the library persists is saved once,
// then mutated hundreds of ways — truncations, single-bit flips, range
// corruptions — and every mutant must come back as a clean non-OK
// util::Status. No crash, no CHECK-abort, no silently-loaded garbage.
//
// The RNG seeds are fixed, so the exact mutation set is deterministic
// across runs and hosts: if this suite is green once, it stays green.
//
// Run via the labeled ctest entry:  ctest -L fault-injection
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <functional>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/ddc_any.h"
#include "persist/persist.h"
#include "quant/code_store.h"
#include "storage/storage.h"
#include "test_util.h"
#include "util/fault_injection.h"
#include "util/status.h"

#ifndef RESINFER_SOURCE_DIR
#error "RESINFER_SOURCE_DIR must point at the repository root"
#endif

namespace resinfer::persist {
namespace {

using util::FaultInjectingFile;
using util::Status;
using util::StatusOr;

// One persisted format: how to write a pristine file and how to load one.
struct FormatCase {
  std::string name;
  std::function<Status(const std::string& path)> save;
  std::function<Status(const std::string& path)> load;
};

// Mutation counts per format. 12 current formats x 35 + 4 legacy fixtures
// x 25 + 4 frozen checksummed fixtures x 35 + 35 for the mmap recipe =
// 695 total mutations, comfortably above the 500-mutation floor the suite
// promises.
constexpr int kBitFlipsPerFormat = 20;
constexpr int kTruncationsPerFormat = 10;
constexpr int kRangeCorruptionsPerFormat = 5;
constexpr int kTruncationsPerLegacyFixture = 25;

class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("resinfer_fault_injection_" +
            std::to_string(static_cast<long long>(::getpid())));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  // Applies the per-format mutation schedule to a pristine file at
  // `good_path`, asserting every mutant fails `load` cleanly. Returns the
  // number of mutations exercised.
  int MutateAndExpectCleanFailure(
      const FormatCase& format, const std::string& good_path,
      uint32_t seed, bool include_bit_flips) {
    StatusOr<FaultInjectingFile> opened = FaultInjectingFile::Open(good_path);
    EXPECT_TRUE(opened.ok()) << opened.status().ToString();
    if (!opened.ok()) return 0;
    FaultInjectingFile file = std::move(opened).value();
    EXPECT_GT(file.size(), 16u) << format.name;

    std::mt19937 rng(seed);
    const std::string mutant_path = good_path + ".mutant";
    int mutations = 0;
    auto check_load_fails = [&](const std::string& what) {
      Status write = file.WriteTo(mutant_path);
      ASSERT_TRUE(write.ok()) << write.ToString();
      Status status = format.load(mutant_path);
      EXPECT_FALSE(status.ok())
          << format.name << ": " << what << " loaded silently";
      EXPECT_FALSE(status.message().empty()) << format.name << ": " << what;
      ++mutations;
      file.Reset();
    };

    std::uniform_int_distribution<std::size_t> byte_dist(0, file.size() - 1);
    if (include_bit_flips) {
      std::uniform_int_distribution<int> bit_dist(0, 7);
      for (int i = 0; i < kBitFlipsPerFormat; ++i) {
        const std::size_t byte = byte_dist(rng);
        const int bit = bit_dist(rng);
        file.FlipBit(byte, bit);
        check_load_fails("bit flip at byte " + std::to_string(byte) +
                         " bit " + std::to_string(bit));
      }
      std::uniform_int_distribution<std::size_t> len_dist(1, 16);
      std::uniform_int_distribution<int> mask_dist(1, 255);
      for (int i = 0; i < kRangeCorruptionsPerFormat; ++i) {
        const std::size_t offset = byte_dist(rng);
        const std::size_t len = len_dist(rng);
        const uint8_t mask = static_cast<uint8_t>(mask_dist(rng));
        file.CorruptRange(offset, len, mask);
        check_load_fails("range corruption at " + std::to_string(offset));
      }
    }
    const int truncations = include_bit_flips ? kTruncationsPerFormat
                                              : kTruncationsPerLegacyFixture;
    for (int i = 0; i < truncations; ++i) {
      const std::size_t new_size = byte_dist(rng);  // always drops >= 1 byte
      file.Truncate(new_size);
      check_load_fails("truncation to " + std::to_string(new_size));
    }
    return mutations;
  }

  std::filesystem::path dir_;
};

// Builds the 12 persisted formats once, on tiny deterministic datasets.
std::vector<FormatCase> AllFormats() {
  std::vector<FormatCase> formats;

  formats.push_back(
      {"matrix",
       [](const std::string& p) {
         return SaveMatrix(p, testing::RandomMatrix(9, 7, 901));
       },
       [](const std::string& p) {
         linalg::Matrix m;
         return LoadMatrix(p, &m);
       }});

  formats.push_back(
      {"pca",
       [](const std::string& p) {
         linalg::Matrix m = testing::RandomMatrix(120, 8, 902);
         return SavePca(p, linalg::PcaModel::Fit(m.data(), 120, 8));
       },
       [](const std::string& p) {
         linalg::PcaModel pca;
         return LoadPca(p, &pca);
       }});

  formats.push_back(
      {"pq",
       [](const std::string& p) {
         data::Dataset ds = testing::SmallDataset(300, 8, 1.0, 903);
         quant::PqOptions options;
         options.num_subspaces = 2;
         options.nbits = 4;
         return SavePq(p, quant::PqCodebook::Train(ds.base.data(), ds.size(),
                                                   8, options));
       },
       [](const std::string& p) {
         quant::PqCodebook pq;
         return LoadPq(p, &pq);
       }});

  formats.push_back(
      {"opq",
       [](const std::string& p) {
         data::Dataset ds = testing::SmallDataset(300, 8, 1.0, 904);
         quant::OpqOptions options;
         options.pq.num_subspaces = 2;
         options.pq.nbits = 4;
         options.num_iterations = 1;
         return SaveOpq(p, quant::OpqModel::Train(ds.base.data(), ds.size(),
                                                  8, options));
       },
       [](const std::string& p) {
         quant::OpqModel opq;
         return LoadOpq(p, &opq);
       }});

  formats.push_back(
      {"rq",
       [](const std::string& p) {
         data::Dataset ds = testing::SmallDataset(300, 8, 0.8, 905);
         quant::RqOptions options;
         options.num_stages = 2;
         options.nbits = 4;
         return SaveRq(p, quant::RqCodebook::Train(ds.base.data(), ds.size(),
                                                   8, options));
       },
       [](const std::string& p) {
         quant::RqCodebook rq;
         return LoadRq(p, &rq);
       }});

  formats.push_back(
      {"sq",
       [](const std::string& p) {
         data::Dataset ds = testing::SmallDataset(200, 6, 0.5, 906);
         return SaveSq(p, quant::SqCodebook::Train(ds.base.data(), ds.size(),
                                                   6));
       },
       [](const std::string& p) {
         quant::SqCodebook sq;
         return LoadSq(p, &sq);
       }});

  formats.push_back(
      {"corrector",
       [](const std::string& p) {
         return SaveCorrector(p, core::LinearCorrector::FromWeights(
                                     1.5f, -0.5f, 0.25f, -1.0f, true));
       },
       [](const std::string& p) {
         core::LinearCorrector c;
         return LoadCorrector(p, &c);
       }});

  formats.push_back(
      {"hnsw",
       [](const std::string& p) {
         data::Dataset ds = testing::SmallDataset(200, 8, 1.0, 907, 2, 2);
         index::HnswOptions options;
         options.M = 6;
         options.ef_construction = 30;
         return SaveHnsw(p, index::HnswIndex::Build(ds.base, options));
       },
       [](const std::string& p) {
         index::HnswIndex hnsw;
         return LoadHnsw(p, &hnsw);
       }});

  formats.push_back(
      {"ivf",  // saves the current (v6, aligned-codes) layout
       [](const std::string& p) {
         data::Dataset ds = testing::SmallDataset(240, 8, 1.0, 908, 4, 2);
         index::IvfOptions options;
         options.num_clusters = 6;
         index::IvfIndex ivf = index::IvfIndex::Build(ds.base, options);
         core::SqEstimatorData sq = core::BuildSqEstimatorData(ds.base);
         core::SqAdcEstimator estimator(&sq);
         ivf.AttachCodes(estimator.MakeCodeStore());
         return SaveIvf(p, ivf);
       },
       [](const std::string& p) {
         index::IvfIndex ivf;
         return LoadIvf(p, &ivf);
       }});

  formats.push_back(
      {"ddc_pca",
       [](const std::string& p) {
         data::Dataset ds = testing::SmallDataset(500, 16, 1.0, 909, 4, 40);
         linalg::PcaModel pca =
             linalg::PcaModel::Fit(ds.base.data(), ds.size(), ds.dim());
         linalg::Matrix rotated =
             pca.TransformBatch(ds.base.data(), ds.size());
         core::DdcPcaOptions options;
         options.init_dim = 4;
         options.delta_dim = 8;
         options.training.max_queries = 20;
         return SaveDdcPcaArtifacts(
             p, core::TrainDdcPca(pca, rotated, ds.base, ds.train_queries,
                                  options));
       },
       [](const std::string& p) {
         core::DdcPcaArtifacts a;
         return LoadDdcPcaArtifacts(p, &a);
       }});

  formats.push_back(
      {"ddc_opq",
       [](const std::string& p) {
         data::Dataset ds = testing::SmallDataset(500, 8, 1.0, 910, 4, 40);
         core::DdcOpqOptions options;
         options.opq.pq.num_subspaces = 2;
         options.opq.pq.nbits = 4;
         options.opq.num_iterations = 1;
         options.training.max_queries = 20;
         return SaveDdcOpqArtifacts(
             p, core::TrainDdcOpq(ds.base, ds.train_queries, options));
       },
       [](const std::string& p) {
         core::DdcOpqArtifacts a;
         return LoadDdcOpqArtifacts(p, &a);
       }});

  formats.push_back(
      {"ddc_rq_cascade",
       [](const std::string& p) {
         data::Dataset ds = testing::SmallDataset(400, 16, 0.8, 911, 4, 60);
         core::DdcRqCascadeOptions options;
         options.rq.nbits = 4;
         options.levels = {2, 4};
         options.training.max_queries = 30;
         return SaveDdcRqCascadeArtifacts(
             p, core::TrainDdcRqCascade(ds.base, ds.train_queries, options));
       },
       [](const std::string& p) {
         core::DdcRqCascadeArtifacts a;
         return LoadDdcRqCascadeArtifacts(p, &a);
       }});

  return formats;
}

TEST_F(FaultInjectionTest, EveryCurrentFormatRejectsEveryMutation) {
  int total_mutations = 0;
  uint32_t seed = 0xC0FFEE;
  for (const FormatCase& format : AllFormats()) {
    SCOPED_TRACE(format.name);
    const std::string path = Path(format.name + ".bin");
    Status save = format.save(path);
    ASSERT_TRUE(save.ok()) << save.ToString();
    // Pristine file must load and checksum-verify before we break it.
    Status pristine = format.load(path);
    ASSERT_TRUE(pristine.ok()) << pristine.ToString();
    Status verified = VerifyFile(path);
    ASSERT_TRUE(verified.ok()) << verified.ToString();

    total_mutations += MutateAndExpectCleanFailure(
        format, path, ++seed, /*include_bit_flips=*/true);
  }
  // 12 formats x (20 flips + 5 ranges + 10 truncations).
  EXPECT_EQ(total_mutations, 12 * (kBitFlipsPerFormat +
                                   kRangeCorruptionsPerFormat +
                                   kTruncationsPerFormat));
}

TEST_F(FaultInjectionTest, LegacyFixtureVersionsRejectTruncation) {
  // Pre-checksum files cannot promise bit-flip detection, but every
  // truncation must still fail cleanly across all frozen versions.
  FormatCase ivf_loader{
      "ivf_legacy", nullptr,
      [](const std::string& p) {
        index::IvfIndex ivf;
        return LoadIvf(p, &ivf);
      }};
  int total_mutations = 0;
  uint32_t seed = 0xFEED;
  for (const char* fixture :
       {"ivf_v1.bin", "ivf_v2.bin", "ivf_v3.bin", "ivf_v4.bin"}) {
    SCOPED_TRACE(fixture);
    const std::string source = std::string(RESINFER_SOURCE_DIR) +
                               "/tests/persist/testdata/" + fixture;
    // Work on a scratch copy so the checked-in fixture is never at risk.
    const std::string path = Path(fixture);
    std::filesystem::copy_file(source, path);
    Status pristine = ivf_loader.load(path);
    ASSERT_TRUE(pristine.ok()) << pristine.ToString();

    total_mutations += MutateAndExpectCleanFailure(
        ivf_loader, path, ++seed, /*include_bit_flips=*/false);
  }
  EXPECT_EQ(total_mutations, 4 * kTruncationsPerLegacyFixture);
}

TEST_F(FaultInjectionTest, FrozenChecksummedFixturesRejectEveryMutation) {
  // v5 and v6 fixtures carry the section envelope, so the full schedule —
  // bit flips and range corruptions included — applies to the frozen
  // bytes, not just truncation.
  FormatCase ivf_loader{
      "ivf_checksummed", nullptr,
      [](const std::string& p) {
        index::IvfIndex ivf;
        return LoadIvf(p, &ivf);
      }};
  int total_mutations = 0;
  uint32_t seed = 0xBEEF;
  for (const char* fixture : {"ivf_v5.bin", "ivf_v5_packed.bin",
                              "ivf_v6.bin", "ivf_v6_packed.bin"}) {
    SCOPED_TRACE(fixture);
    const std::string source = std::string(RESINFER_SOURCE_DIR) +
                               "/tests/persist/testdata/" + fixture;
    const std::string path = Path(fixture);
    std::filesystem::copy_file(source, path);
    Status pristine = ivf_loader.load(path);
    ASSERT_TRUE(pristine.ok()) << pristine.ToString();

    total_mutations += MutateAndExpectCleanFailure(
        ivf_loader, path, ++seed, /*include_bit_flips=*/true);
  }
  EXPECT_EQ(total_mutations, 4 * (kBitFlipsPerFormat +
                                  kRangeCorruptionsPerFormat +
                                  kTruncationsPerFormat));
}

TEST_F(FaultInjectionTest, MmapRecipeRejectsEveryMutation) {
  // The zero-copy mmap load skips the code-payload CRC by design (reading
  // the payload would fault in every page, defeating the lazy tier), so a
  // bit flip inside the record bytes is only caught by VerifyFile. The
  // documented recipe — VerifyFile, then LoadIvf with the mmap backend —
  // must therefore reject every mutation end to end.
  FormatCase recipe{
      "ivf_mmap_recipe",
      [](const std::string& p) {
        data::Dataset ds = testing::SmallDataset(240, 8, 1.0, 913, 4, 2);
        index::IvfOptions options;
        options.num_clusters = 6;
        index::IvfIndex ivf = index::IvfIndex::Build(ds.base, options);
        core::SqEstimatorData sq = core::BuildSqEstimatorData(ds.base);
        core::SqAdcEstimator estimator(&sq);
        ivf.AttachCodes(estimator.MakeCodeStore());
        return SaveIvf(p, ivf);
      },
      [](const std::string& p) {
        Status verified = VerifyFile(p);
        if (!verified.ok()) return verified;
        index::IvfIndex ivf;
        IvfLoadOptions options;
        options.backend = storage::StorageBackend::kMmap;
        return LoadIvf(p, &ivf, options);
      }};

  const std::string path = Path("ivf_mmap_recipe.bin");
  Status save = recipe.save(path);
  ASSERT_TRUE(save.ok()) << save.ToString();
  Status pristine = recipe.load(path);
  ASSERT_TRUE(pristine.ok()) << pristine.ToString();

  const int total = MutateAndExpectCleanFailure(recipe, path, 0xD15C,
                                                /*include_bit_flips=*/true);
  EXPECT_EQ(total, kBitFlipsPerFormat + kRangeCorruptionsPerFormat +
                       kTruncationsPerFormat);
}

TEST_F(FaultInjectionTest, MutationsComposeAndResetRestores) {
  // Sanity-check the harness itself: mutations stack until Reset, and
  // Reset restores the exact original bytes.
  linalg::Matrix m = testing::RandomMatrix(5, 5, 912);
  const std::string path = Path("harness.bin");
  ASSERT_TRUE(SaveMatrix(path, m).ok());
  StatusOr<FaultInjectingFile> opened = FaultInjectingFile::Open(path);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  FaultInjectingFile file = std::move(opened).value();

  const std::vector<uint8_t> original = file.bytes();
  file.FlipBit(20, 3);
  file.CorruptRange(24, 4, 0xff);
  EXPECT_NE(file.bytes(), original);
  file.Truncate(file.size() - 8);
  EXPECT_EQ(file.size(), original.size() - 8);
  file.Reset();
  EXPECT_EQ(file.bytes(), original);

  EXPECT_EQ(FaultInjectingFile::Open(Path("missing.bin")).status().code(),
            util::StatusCode::kNotFound);
}

}  // namespace
}  // namespace resinfer::persist

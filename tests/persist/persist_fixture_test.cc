// Cross-version on-disk compatibility against CHECKED-IN fixture files
// (tests/persist/testdata/, written once by tools/gen_persist_fixtures.cc).
//
// The roundtrip tests in persist_test.cc only prove that today's writer and
// today's reader agree; these prove that today's reader still understands
// yesterday's bytes. If a loader change breaks v1/v2/v3 compatibility, this
// suite fails in CI rather than at load time in production. The expected
// constants are duplicated from the generator on purpose — they describe
// the frozen files, not the current code.
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "index/ivf_index.h"
#include "persist/persist.h"
#include "quant/code_store.h"
#include "storage/storage.h"

#ifndef RESINFER_SOURCE_DIR
#error "RESINFER_SOURCE_DIR must point at the repository root"
#endif

namespace resinfer::persist {
namespace {

std::string FixturePath(const std::string& name) {
  return std::string(RESINFER_SOURCE_DIR) + "/tests/persist/testdata/" +
         name;
}

// Mirrors gen_persist_fixtures.cc — frozen with the files.
const std::vector<int64_t> kOffsets = {0, 4, 9, 12};
const std::vector<int64_t> kIds = {0, 3, 6, 9, 1, 4, 7, 10, 11, 2, 5, 8};
constexpr int64_t kSize = 12;
constexpr int64_t kDim = 4;

void ExpectFixtureLayout(const index::IvfIndex& ivf) {
  EXPECT_EQ(ivf.size(), kSize);
  EXPECT_EQ(ivf.num_clusters(), 3);
  EXPECT_EQ(ivf.centroids().cols(), kDim);
  EXPECT_EQ(ivf.bucket_offsets(), kOffsets);
  EXPECT_EQ(ivf.ids(), kIds);
  for (int64_t c = 0; c < 3; ++c) {
    for (int64_t j = 0; j < kDim; ++j) {
      EXPECT_EQ(ivf.centroids().At(c, j),
                static_cast<float>(c) + 0.25f * static_cast<float>(j));
    }
  }
}

TEST(PersistFixtureTest, V1NestedBucketsStillLoad) {
  index::IvfIndex ivf;
  util::Status s = LoadIvf(FixturePath("ivf_v1.bin"), &ivf);
  ASSERT_TRUE(s.ok()) << s.ToString();
  ExpectFixtureLayout(ivf);
  EXPECT_FALSE(ivf.has_codes());
}

TEST(PersistFixtureTest, V2CsrStillLoads) {
  index::IvfIndex ivf;
  util::Status s = LoadIvf(FixturePath("ivf_v2.bin"), &ivf);
  ASSERT_TRUE(s.ok()) << s.ToString();
  ExpectFixtureLayout(ivf);
  EXPECT_FALSE(ivf.has_codes());
}

TEST(PersistFixtureTest, V3CodeSectionStillLoads) {
  index::IvfIndex ivf;
  util::Status s = LoadIvf(FixturePath("ivf_v3.bin"), &ivf);
  ASSERT_TRUE(s.ok()) << s.ToString();
  ExpectFixtureLayout(ivf);

  ASSERT_TRUE(ivf.has_codes());
  const quant::CodeStore& codes = ivf.codes();
  EXPECT_EQ(codes.tag(), "fixture/cs2/sc1/n12");
  EXPECT_EQ(codes.code_size(), 2);
  EXPECT_EQ(codes.num_sidecars(), 1);
  // v3 predates the packing byte; its stores are byte-per-code by
  // definition.
  EXPECT_EQ(codes.packing(), quant::CodePacking::kBytePerCode);
  ASSERT_EQ(codes.size(), kSize);
  // Records are bucket-permuted on disk: record j belongs to point
  // kIds[j], whose code bytes are {id, 2*id} and sidecar id + 0.5.
  for (std::size_t j = 0; j < kIds.size(); ++j) {
    const int64_t id = kIds[j];
    const uint8_t* rec = codes.record(static_cast<int64_t>(j));
    EXPECT_EQ(rec[0], static_cast<uint8_t>(id)) << j;
    EXPECT_EQ(rec[1], static_cast<uint8_t>(2 * id)) << j;
    EXPECT_EQ(quant::RecordSidecars(rec, codes.code_size())[0],
              static_cast<float>(id) + 0.5f)
        << j;
  }
}

TEST(PersistFixtureTest, V4PackedCodeSectionLoads) {
  index::IvfIndex ivf;
  util::Status s = LoadIvf(FixturePath("ivf_v4.bin"), &ivf);
  ASSERT_TRUE(s.ok()) << s.ToString();
  ExpectFixtureLayout(ivf);

  ASSERT_TRUE(ivf.has_codes());
  const quant::CodeStore& codes = ivf.codes();
  EXPECT_EQ(codes.tag(), "fixture/cs2/sc1/n12/pk4");
  EXPECT_EQ(codes.code_size(), 2);
  EXPECT_EQ(codes.num_sidecars(), 1);
  EXPECT_EQ(codes.packing(), quant::CodePacking::kPacked4);
  ASSERT_EQ(codes.size(), kSize);
  // Record j belongs to point kIds[j]: three nibble codes {id, 2id, 3id}
  // (mod 16) packed into two bytes with a zero pad nibble, sidecar
  // id + 0.25.
  const quant::CodeLayout layout = quant::CodeLayout::ForBits(4);
  for (std::size_t j = 0; j < kIds.size(); ++j) {
    const int64_t id = kIds[j];
    const uint8_t* rec = codes.record(static_cast<int64_t>(j));
    EXPECT_EQ(quant::CodeAt(rec, 0, layout), id & 0xf) << j;
    EXPECT_EQ(quant::CodeAt(rec, 1, layout), (2 * id) & 0xf) << j;
    EXPECT_EQ(quant::CodeAt(rec, 2, layout), (3 * id) & 0xf) << j;
    EXPECT_EQ(rec[1] >> 4, 0) << "pad nibble must stay zero, record " << j;
    EXPECT_EQ(quant::RecordSidecars(rec, codes.code_size())[0],
              static_cast<float>(id) + 0.25f)
        << j;
  }
}

TEST(PersistFixtureTest, V5ChecksummedByteStoreLoads) {
  index::IvfIndex ivf;
  util::Status s = LoadIvf(FixturePath("ivf_v5.bin"), &ivf);
  ASSERT_TRUE(s.ok()) << s.ToString();
  ExpectFixtureLayout(ivf);

  ASSERT_TRUE(ivf.has_codes());
  const quant::CodeStore& codes = ivf.codes();
  EXPECT_EQ(codes.tag(), "fixture/cs2/sc1/n12");
  EXPECT_EQ(codes.packing(), quant::CodePacking::kBytePerCode);
  ASSERT_EQ(codes.size(), kSize);
  for (std::size_t j = 0; j < kIds.size(); ++j) {
    const int64_t id = kIds[j];
    const uint8_t* rec = codes.record(static_cast<int64_t>(j));
    EXPECT_EQ(rec[0], static_cast<uint8_t>(id)) << j;
    EXPECT_EQ(rec[1], static_cast<uint8_t>(2 * id)) << j;
    EXPECT_EQ(quant::RecordSidecars(rec, codes.code_size())[0],
              static_cast<float>(id) + 0.5f)
        << j;
  }
}

TEST(PersistFixtureTest, V5ChecksummedPackedStoreLoads) {
  index::IvfIndex ivf;
  util::Status s = LoadIvf(FixturePath("ivf_v5_packed.bin"), &ivf);
  ASSERT_TRUE(s.ok()) << s.ToString();
  ExpectFixtureLayout(ivf);

  ASSERT_TRUE(ivf.has_codes());
  const quant::CodeStore& codes = ivf.codes();
  EXPECT_EQ(codes.tag(), "fixture/cs2/sc1/n12/pk4");
  EXPECT_EQ(codes.packing(), quant::CodePacking::kPacked4);
  ASSERT_EQ(codes.size(), kSize);
  const quant::CodeLayout layout = quant::CodeLayout::ForBits(4);
  for (std::size_t j = 0; j < kIds.size(); ++j) {
    const int64_t id = kIds[j];
    const uint8_t* rec = codes.record(static_cast<int64_t>(j));
    EXPECT_EQ(quant::CodeAt(rec, 0, layout), id & 0xf) << j;
    EXPECT_EQ(quant::CodeAt(rec, 1, layout), (2 * id) & 0xf) << j;
    EXPECT_EQ(quant::CodeAt(rec, 2, layout), (3 * id) & 0xf) << j;
    EXPECT_EQ(quant::RecordSidecars(rec, codes.code_size())[0],
              static_cast<float>(id) + 0.25f)
        << j;
  }
}

void ExpectFixtureByteCodes(const quant::CodeStore& codes) {
  EXPECT_EQ(codes.tag(), "fixture/cs2/sc1/n12");
  EXPECT_EQ(codes.code_size(), 2);
  EXPECT_EQ(codes.num_sidecars(), 1);
  EXPECT_EQ(codes.packing(), quant::CodePacking::kBytePerCode);
  ASSERT_EQ(codes.size(), kSize);
  for (std::size_t j = 0; j < kIds.size(); ++j) {
    const int64_t id = kIds[j];
    const uint8_t* rec = codes.record(static_cast<int64_t>(j));
    EXPECT_EQ(rec[0], static_cast<uint8_t>(id)) << j;
    EXPECT_EQ(rec[1], static_cast<uint8_t>(2 * id)) << j;
    EXPECT_EQ(quant::RecordSidecars(rec, codes.code_size())[0],
              static_cast<float>(id) + 0.5f)
        << j;
  }
}

TEST(PersistFixtureTest, V6AlignedByteStoreLoads) {
  index::IvfIndex ivf;
  util::Status s = LoadIvf(FixturePath("ivf_v6.bin"), &ivf);
  ASSERT_TRUE(s.ok()) << s.ToString();
  ExpectFixtureLayout(ivf);
  ASSERT_TRUE(ivf.has_codes());
  ExpectFixtureByteCodes(ivf.codes());
}

TEST(PersistFixtureTest, V6AlignedPackedStoreLoads) {
  index::IvfIndex ivf;
  util::Status s = LoadIvf(FixturePath("ivf_v6_packed.bin"), &ivf);
  ASSERT_TRUE(s.ok()) << s.ToString();
  ExpectFixtureLayout(ivf);

  ASSERT_TRUE(ivf.has_codes());
  const quant::CodeStore& codes = ivf.codes();
  EXPECT_EQ(codes.tag(), "fixture/cs2/sc1/n12/pk4");
  EXPECT_EQ(codes.packing(), quant::CodePacking::kPacked4);
  ASSERT_EQ(codes.size(), kSize);
  const quant::CodeLayout layout = quant::CodeLayout::ForBits(4);
  for (std::size_t j = 0; j < kIds.size(); ++j) {
    const int64_t id = kIds[j];
    const uint8_t* rec = codes.record(static_cast<int64_t>(j));
    EXPECT_EQ(quant::CodeAt(rec, 0, layout), id & 0xf) << j;
    EXPECT_EQ(quant::CodeAt(rec, 1, layout), (2 * id) & 0xf) << j;
    EXPECT_EQ(quant::CodeAt(rec, 2, layout), (3 * id) & 0xf) << j;
    EXPECT_EQ(quant::RecordSidecars(rec, codes.code_size())[0],
              static_cast<float>(id) + 0.25f)
        << j;
  }
}

TEST(PersistFixtureTest, V6FixturesLoadBitIdenticalFromMmap) {
  // The memory-vs-mmap load-parity check over frozen bytes: both backends
  // must materialize identical records (and metadata) from the same file,
  // with the mmap store reporting where its bytes actually live.
  for (const char* name : {"ivf_v6.bin", "ivf_v6_packed.bin"}) {
    index::IvfIndex memory, mapped;
    IvfLoadOptions options;
    options.backend = storage::StorageBackend::kMemory;
    util::Status s = LoadIvf(FixturePath(name), &memory, options);
    ASSERT_TRUE(s.ok()) << name << ": " << s.ToString();
    options.backend = storage::StorageBackend::kMmap;
    s = LoadIvf(FixturePath(name), &mapped, options);
    ASSERT_TRUE(s.ok()) << name << ": " << s.ToString();

    ASSERT_TRUE(memory.has_codes());
    ASSERT_TRUE(mapped.has_codes());
    EXPECT_EQ(memory.codes().storage_backend(),
              storage::StorageBackend::kMemory)
        << name;
    EXPECT_EQ(mapped.codes().storage_backend(),
              storage::StorageBackend::kMmap)
        << name;
    EXPECT_TRUE(mapped.codes().is_view()) << name;
    EXPECT_EQ(reinterpret_cast<uintptr_t>(mapped.codes().data()) % 64, 0u)
        << name << ": mapped records must sit on the v6 alignment";

    ASSERT_EQ(memory.codes().data_bytes(), mapped.codes().data_bytes())
        << name;
    EXPECT_EQ(std::memcmp(memory.codes().data(), mapped.codes().data(),
                          static_cast<std::size_t>(
                              memory.codes().data_bytes())),
              0)
        << name;
    EXPECT_EQ(memory.codes().tag(), mapped.codes().tag()) << name;
    EXPECT_EQ(memory.codes().stride(), mapped.codes().stride()) << name;
    EXPECT_EQ(memory.codes().packing(), mapped.codes().packing()) << name;
  }
}

TEST(PersistFixtureTest, V6FixturesPassChecksumVerification) {
  for (const char* name : {"ivf_v6.bin", "ivf_v6_packed.bin"}) {
    std::string format;
    util::Status s = VerifyFile(FixturePath(name), &format);
    EXPECT_TRUE(s.ok()) << name << ": " << s.ToString();
    EXPECT_EQ(format, "ivf index") << name;
  }
}

TEST(PersistFixtureTest, V5FixturesPassChecksumVerification) {
  for (const char* name : {"ivf_v5.bin", "ivf_v5_packed.bin"}) {
    std::string format;
    util::Status s = VerifyFile(FixturePath(name), &format);
    EXPECT_TRUE(s.ok()) << name << ": " << s.ToString();
    EXPECT_EQ(format, "ivf index") << name;
  }
  // Pre-checksum fixtures are unverifiable by design, not corrupt.
  EXPECT_EQ(VerifyFile(FixturePath("ivf_v4.bin")).code(),
            util::StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace resinfer::persist

#include "persist/persist.h"

#include <unistd.h>

#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "core/ddc_any.h"
#include "data/ground_truth.h"
#include "quant/code_store.h"
#include "storage/storage.h"
#include "test_util.h"
#include "util/binary_io.h"

namespace resinfer::persist {
namespace {

// The record bytes of a store as an independent vector — for byte-for-byte
// comparisons and for hand-writing legacy count-prefixed code sections.
std::vector<uint8_t> CodeBytes(const quant::CodeStore& codes) {
  return std::vector<uint8_t>(codes.data(),
                              codes.data() + codes.data_bytes());
}

class PersistTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per process: ctest -j runs each case in its own process, and a
    // shared directory would let one case's TearDown delete another's
    // files mid-test.
    dir_ = std::filesystem::temp_directory_path() /
           ("resinfer_persist_test_" +
            std::to_string(static_cast<long long>(::getpid())));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    SetWriteFailureForTesting(-1);
    std::filesystem::remove_all(dir_);
  }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  // Chops `bytes` off the end of a file.
  void Truncate(const std::string& path, int64_t bytes) {
    std::filesystem::resize_file(
        path, std::filesystem::file_size(path) - bytes);
  }

  // XORs one byte of the file at `offset` (negative: from the end).
  void FlipByte(const std::string& path, int64_t offset) {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    if (offset < 0) {
      f.seekg(offset, std::ios::end);
      offset = f.tellg();
    }
    f.seekg(offset, std::ios::beg);
    char b = 0;
    f.read(&b, 1);
    b = static_cast<char>(b ^ 0x40);
    f.seekp(offset, std::ios::beg);
    f.write(&b, 1);
  }

  std::filesystem::path dir_;
};

TEST_F(PersistTest, MatrixRoundTrip) {
  linalg::Matrix m = testing::RandomMatrix(13, 7, 301);
  util::Status s = SaveMatrix(Path("m.bin"), m);
  ASSERT_TRUE(s.ok()) << s.ToString();
  linalg::Matrix loaded;
  s = LoadMatrix(Path("m.bin"), &loaded);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(linalg::MaxAbsDifference(m, loaded), 0.0);
}

TEST_F(PersistTest, MatrixWrongMagicFails) {
  linalg::Matrix m = testing::RandomMatrix(3, 3, 302);
  ASSERT_TRUE(SavePca(Path("pca_as_matrix.bin"),
                      linalg::PcaModel::Fit(m.data(), 3, 3))
                  .ok());
  linalg::Matrix loaded;
  util::Status s = LoadMatrix(Path("pca_as_matrix.bin"), &loaded);
  EXPECT_EQ(s.code(), util::StatusCode::kInvalidArgument);
  EXPECT_FALSE(s.message().empty());
}

TEST_F(PersistTest, MatrixBitFlipDetectedByChecksum) {
  // Any single corrupted payload byte must be caught by the v5 section
  // CRC — even one that yields a structurally valid matrix.
  linalg::Matrix m = testing::RandomMatrix(9, 5, 316);
  ASSERT_TRUE(SaveMatrix(Path("m_flip.bin"), m).ok());
  // Flip a byte deep in the float payload (header is 12 bytes; the section
  // frame and rows/cols sit before the floats).
  FlipByte(Path("m_flip.bin"), 64);
  linalg::Matrix loaded;
  util::Status s = LoadMatrix(Path("m_flip.bin"), &loaded);
  EXPECT_EQ(s.code(), util::StatusCode::kCorruption) << s.ToString();
  EXPECT_NE(s.ToString().find("checksum"), std::string::npos) << s.ToString();
}

TEST_F(PersistTest, SaveIsAtomicUnderWriteFailure) {
  // A failed save (simulated ENOSPC) must leave the existing good file
  // untouched and leave no temp litter behind.
  linalg::Matrix good = testing::RandomMatrix(6, 6, 317);
  ASSERT_TRUE(SaveMatrix(Path("atomic.bin"), good).ok());

  linalg::Matrix other = testing::RandomMatrix(50, 50, 318);
  SetWriteFailureForTesting(64);  // fail after 64 bytes
  util::Status s = SaveMatrix(Path("atomic.bin"), other);
  SetWriteFailureForTesting(-1);
  EXPECT_EQ(s.code(), util::StatusCode::kIOError) << s.ToString();
  EXPECT_NE(s.ToString().find("untouched"), std::string::npos) << s.ToString();

  // Original contents survive and still verify.
  linalg::Matrix loaded;
  util::Status load = LoadMatrix(Path("atomic.bin"), &loaded);
  ASSERT_TRUE(load.ok()) << load.ToString();
  EXPECT_EQ(linalg::MaxAbsDifference(good, loaded), 0.0);
  // No leftover temp files.
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    EXPECT_EQ(entry.path().filename().string().find(".tmp."),
              std::string::npos)
        << entry.path();
  }
}

TEST_F(PersistTest, VerifyFileChecksumWalk) {
  linalg::Matrix m = testing::RandomMatrix(11, 3, 319);
  ASSERT_TRUE(SaveMatrix(Path("v.bin"), m).ok());
  std::string format;
  util::Status s = VerifyFile(Path("v.bin"), &format);
  EXPECT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(format, "matrix");

  FlipByte(Path("v.bin"), 48);
  s = VerifyFile(Path("v.bin"), &format);
  EXPECT_EQ(s.code(), util::StatusCode::kCorruption) << s.ToString();
  EXPECT_FALSE(s.message().empty());

  // Pre-checksum versions are reported as unverifiable, not corrupt.
  {
    BinaryWriter writer(Path("old.bin"));
    const char magic[8] = {'R', 'I', 'S', 'Q', 'C', 'B', 'K', '1'};
    WriteHeader(writer, magic, /*version=*/1);
    writer.WriteVector(std::vector<float>{0.0f, 0.0f});
    writer.WriteVector(std::vector<float>{0.5f, 0.5f});
    ASSERT_TRUE(writer.Close());
  }
  s = VerifyFile(Path("old.bin"), &format);
  EXPECT_EQ(s.code(), util::StatusCode::kFailedPrecondition) << s.ToString();

  EXPECT_EQ(VerifyFile(Path("missing.bin")).code(),
            util::StatusCode::kNotFound);
}

TEST_F(PersistTest, PcaRoundTripPreservesTransforms) {
  data::Dataset ds = testing::SmallDataset(1000, 24, 1.0, 303);
  linalg::PcaModel pca =
      linalg::PcaModel::Fit(ds.base.data(), ds.size(), ds.dim());
  util::Status s = SavePca(Path("pca.bin"), pca);
  ASSERT_TRUE(s.ok()) << s.ToString();
  linalg::PcaModel loaded;
  s = LoadPca(Path("pca.bin"), &loaded);
  ASSERT_TRUE(s.ok()) << s.ToString();

  std::vector<float> a(ds.dim()), b(ds.dim());
  for (int64_t i = 0; i < 10; ++i) {
    pca.Transform(ds.base.Row(i), a.data());
    loaded.Transform(ds.base.Row(i), b.data());
    for (int64_t j = 0; j < ds.dim(); ++j) EXPECT_EQ(a[j], b[j]);
  }
  EXPECT_EQ(pca.suffix_variance(), loaded.suffix_variance());
}

TEST_F(PersistTest, PqRoundTripPreservesCodesAndAdc) {
  data::Dataset ds = testing::SmallDataset(1500, 16, 1.0, 304);
  quant::PqOptions options;
  options.num_subspaces = 4;
  options.nbits = 5;
  quant::PqCodebook pq =
      quant::PqCodebook::Train(ds.base.data(), ds.size(), 16, options);
  util::Status s = SavePq(Path("pq.bin"), pq);
  ASSERT_TRUE(s.ok()) << s.ToString();
  quant::PqCodebook loaded;
  s = LoadPq(Path("pq.bin"), &loaded);
  ASSERT_TRUE(s.ok()) << s.ToString();

  EXPECT_EQ(loaded.dim(), pq.dim());
  EXPECT_EQ(loaded.num_subspaces(), pq.num_subspaces());
  std::vector<uint8_t> c1(pq.code_size()), c2(pq.code_size());
  std::vector<float> t1(pq.adc_table_size()), t2(pq.adc_table_size());
  for (int64_t i = 0; i < 20; ++i) {
    pq.Encode(ds.base.Row(i), c1.data());
    loaded.Encode(ds.base.Row(i), c2.data());
    EXPECT_EQ(c1, c2);
  }
  pq.ComputeAdcTable(ds.queries.Row(0), t1.data());
  loaded.ComputeAdcTable(ds.queries.Row(0), t2.data());
  EXPECT_EQ(t1, t2);
}

TEST_F(PersistTest, OpqRoundTrip) {
  data::Dataset ds = testing::SmallDataset(1200, 16, 1.0, 305);
  quant::OpqOptions options;
  options.pq.num_subspaces = 4;
  options.pq.nbits = 5;
  options.num_iterations = 2;
  quant::OpqModel opq =
      quant::OpqModel::Train(ds.base.data(), ds.size(), 16, options);
  util::Status s = SaveOpq(Path("opq.bin"), opq);
  ASSERT_TRUE(s.ok()) << s.ToString();
  quant::OpqModel loaded;
  s = LoadOpq(Path("opq.bin"), &loaded);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(linalg::MaxAbsDifference(opq.rotation(), loaded.rotation()), 0.0);
}

TEST_F(PersistTest, HnswRoundTripIdenticalSearch) {
  data::Dataset ds = testing::SmallDataset(2000, 24, 1.0, 306, 16, 4);
  index::HnswOptions options;
  options.M = 8;
  options.ef_construction = 60;
  index::HnswIndex hnsw = index::HnswIndex::Build(ds.base, options);
  util::Status s = SaveHnsw(Path("hnsw.bin"), hnsw);
  ASSERT_TRUE(s.ok()) << s.ToString();
  index::HnswIndex loaded;
  s = LoadHnsw(Path("hnsw.bin"), &loaded);
  ASSERT_TRUE(s.ok()) << s.ToString();

  EXPECT_EQ(loaded.size(), hnsw.size());
  EXPECT_EQ(loaded.max_level(), hnsw.max_level());
  EXPECT_EQ(loaded.entry_point(), hnsw.entry_point());

  index::FlatDistanceComputer computer(ds.base.data(), ds.size(), ds.dim());
  for (int64_t q = 0; q < ds.queries.rows(); ++q) {
    auto a = hnsw.Search(computer, ds.queries.Row(q), 10, 64);
    auto b = loaded.Search(computer, ds.queries.Row(q), 10, 64);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].id, b[i].id);
      EXPECT_EQ(a[i].distance, b[i].distance);
    }
  }
}

TEST_F(PersistTest, HnswTruncatedFails) {
  data::Dataset ds = testing::SmallDataset(500, 8, 1.0, 307, 2, 2);
  index::HnswOptions options;
  options.M = 8;
  options.ef_construction = 40;
  index::HnswIndex hnsw = index::HnswIndex::Build(ds.base, options);
  ASSERT_TRUE(SaveHnsw(Path("hnsw_t.bin"), hnsw).ok());
  Truncate(Path("hnsw_t.bin"), 64);
  index::HnswIndex loaded;
  util::Status s = LoadHnsw(Path("hnsw_t.bin"), &loaded);
  EXPECT_EQ(s.code(), util::StatusCode::kCorruption);
  EXPECT_FALSE(s.message().empty());
}

TEST_F(PersistTest, IvfRoundTripIdenticalSearch) {
  data::Dataset ds = testing::SmallDataset(1500, 16, 1.0, 308, 8, 2);
  index::IvfOptions options;
  options.num_clusters = 24;
  index::IvfIndex ivf = index::IvfIndex::Build(ds.base, options);
  util::Status s = SaveIvf(Path("ivf.bin"), ivf);
  ASSERT_TRUE(s.ok()) << s.ToString();
  index::IvfIndex loaded;
  s = LoadIvf(Path("ivf.bin"), &loaded);
  ASSERT_TRUE(s.ok()) << s.ToString();

  index::FlatDistanceComputer computer(ds.base.data(), ds.size(), ds.dim());
  for (int64_t q = 0; q < ds.queries.rows(); ++q) {
    auto a = ivf.Search(computer, ds.queries.Row(q), 10, 6);
    auto b = loaded.Search(computer, ds.queries.Row(q), 10, 6);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].id, b[i].id);
  }
}

TEST_F(PersistTest, IvfCsrRoundTripPreservesLayout) {
  data::Dataset ds = testing::SmallDataset(900, 12, 1.0, 312, 4, 2);
  index::IvfOptions options;
  options.num_clusters = 16;
  index::IvfIndex ivf = index::IvfIndex::Build(ds.base, options);
  ASSERT_TRUE(SaveIvf(Path("ivf_csr.bin"), ivf).ok());
  index::IvfIndex loaded;
  util::Status s = LoadIvf(Path("ivf_csr.bin"), &loaded);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(loaded.size(), ivf.size());
  EXPECT_EQ(loaded.bucket_offsets(), ivf.bucket_offsets());
  EXPECT_EQ(loaded.ids(), ivf.ids());
}

TEST_F(PersistTest, IvfLegacyNestedFormatStillLoads) {
  // Hand-write a v1 (nested-bucket) file; the loader must flatten it into
  // the CSR layout with identical search behavior.
  data::Dataset ds = testing::SmallDataset(300, 8, 1.0, 311, 6, 2);
  index::IvfOptions options;
  options.num_clusters = 8;
  index::IvfIndex ivf = index::IvfIndex::Build(ds.base, options);

  {
    BinaryWriter writer(Path("ivf_v1.bin"));
    const char magic[8] = {'R', 'I', 'I', 'V', 'F', 'I', 'X', '1'};
    WriteHeader(writer, magic, /*version=*/1);
    writer.Write(ivf.size());
    writer.Write(ivf.centroids().rows());
    writer.Write(ivf.centroids().cols());
    writer.WriteFloats(ivf.centroids().data(), ivf.centroids().size());
    writer.Write<int32_t>(ivf.num_clusters());
    for (int b = 0; b < ivf.num_clusters(); ++b) {
      std::vector<int64_t> bucket(ivf.BucketIds(b),
                                  ivf.BucketIds(b) + ivf.BucketSize(b));
      writer.WriteVector(bucket);
    }
    ASSERT_TRUE(writer.ok());
  }

  index::IvfIndex loaded;
  util::Status s = LoadIvf(Path("ivf_v1.bin"), &loaded);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(loaded.bucket_offsets(), ivf.bucket_offsets());
  EXPECT_EQ(loaded.ids(), ivf.ids());

  index::FlatDistanceComputer computer(ds.base.data(), ds.size(), ds.dim());
  for (int64_t q = 0; q < ds.queries.rows(); ++q) {
    auto a = ivf.Search(computer, ds.queries.Row(q), 5, 3);
    auto b = loaded.Search(computer, ds.queries.Row(q), 5, 3);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].id, b[i].id);
  }
}

TEST_F(PersistTest, IvfBadOffsetsFail) {
  // Hand-write a pre-checksum v2 file with a negative offsets entry: the
  // CSR validation (not a checksum) must reject it, proving the semantic
  // checks still run for files the CRC cannot vouch for.
  data::Dataset ds = testing::SmallDataset(200, 8, 1.0, 313, 2, 2);
  index::IvfOptions options;
  options.num_clusters = 4;
  index::IvfIndex ivf = index::IvfIndex::Build(ds.base, options);
  {
    BinaryWriter writer(Path("ivf_o.bin"));
    const char magic[8] = {'R', 'I', 'I', 'V', 'F', 'I', 'X', '1'};
    WriteHeader(writer, magic, /*version=*/2);
    writer.Write(ivf.size());
    writer.Write(ivf.centroids().rows());
    writer.Write(ivf.centroids().cols());
    writer.WriteFloats(ivf.centroids().data(), ivf.centroids().size());
    writer.Write<int32_t>(ivf.num_clusters());
    std::vector<int64_t> offsets = ivf.bucket_offsets();
    offsets[1] = -5;
    writer.WriteVector(offsets);
    writer.WriteVector(ivf.ids());
    ASSERT_TRUE(writer.ok());
  }
  index::IvfIndex loaded;
  util::Status s = LoadIvf(Path("ivf_o.bin"), &loaded);
  EXPECT_EQ(s.code(), util::StatusCode::kCorruption);
  EXPECT_FALSE(s.message().empty());
}

TEST_F(PersistTest, IvfCorruptBucketIdFails) {
  // Corrupt a byte in the v5 ids payload: the section checksum catches it.
  data::Dataset ds = testing::SmallDataset(100, 8, 1.0, 309, 2, 2);
  index::IvfOptions options;
  options.num_clusters = 4;
  index::IvfIndex ivf = index::IvfIndex::Build(ds.base, options);
  ASSERT_TRUE(SaveIvf(Path("ivf_c.bin"), ivf).ok());
  // The flat ids payload sits near the end, just before the codes section
  // and footer.
  FlipByte(Path("ivf_c.bin"), -64);
  index::IvfIndex loaded;
  EXPECT_EQ(LoadIvf(Path("ivf_c.bin"), &loaded).code(),
            util::StatusCode::kCorruption);
}

// --- v3 code-resident section ----------------------------------------------

// A small IVF with an attached (bucket-permuted) SQ code store; SQ needs no
// corrector training, which keeps these tests fast.
struct IvfWithCodes {
  data::Dataset ds = testing::SmallDataset(240, 8, 1.0, 317, 4, 2);
  core::SqEstimatorData sq = core::BuildSqEstimatorData(ds.base);
  index::IvfIndex ivf;

  IvfWithCodes() {
    index::IvfOptions options;
    options.num_clusters = 6;
    ivf = index::IvfIndex::Build(ds.base, options);
    core::SqAdcEstimator estimator(&sq);
    ivf.AttachCodes(estimator.MakeCodeStore());
  }
};

TEST_F(PersistTest, IvfV3RoundTripWithCodes) {
  IvfWithCodes fixture;
  ASSERT_TRUE(fixture.ivf.has_codes());
  util::Status s = SaveIvf(Path("ivf_v3.bin"), fixture.ivf);
  ASSERT_TRUE(s.ok()) << s.ToString();

  index::IvfIndex loaded;
  s = LoadIvf(Path("ivf_v3.bin"), &loaded);
  ASSERT_TRUE(s.ok()) << s.ToString();
  ASSERT_TRUE(loaded.has_codes());
  EXPECT_EQ(loaded.bucket_offsets(), fixture.ivf.bucket_offsets());
  EXPECT_EQ(loaded.ids(), fixture.ivf.ids());
  // The store must come back byte-for-byte (it is already bucket-permuted
  // on disk, so the load path never re-permutes).
  EXPECT_EQ(loaded.codes().tag(), fixture.ivf.codes().tag());
  EXPECT_EQ(loaded.codes().code_size(), fixture.ivf.codes().code_size());
  EXPECT_EQ(loaded.codes().num_sidecars(),
            fixture.ivf.codes().num_sidecars());
  EXPECT_EQ(CodeBytes(loaded.codes()), CodeBytes(fixture.ivf.codes()));
}

TEST_F(PersistTest, IvfV2FormatStillLoads) {
  // Hand-write a v2 (CSR, no code section) file; the loader must accept it
  // and come back without attached codes.
  IvfWithCodes fixture;
  const index::IvfIndex& ivf = fixture.ivf;
  {
    BinaryWriter writer(Path("ivf_v2.bin"));
    const char magic[8] = {'R', 'I', 'I', 'V', 'F', 'I', 'X', '1'};
    WriteHeader(writer, magic, /*version=*/2);
    writer.Write(ivf.size());
    writer.Write(ivf.centroids().rows());
    writer.Write(ivf.centroids().cols());
    writer.WriteFloats(ivf.centroids().data(), ivf.centroids().size());
    writer.Write<int32_t>(ivf.num_clusters());
    writer.WriteVector(ivf.bucket_offsets());
    writer.WriteVector(ivf.ids());
    ASSERT_TRUE(writer.ok());
  }
  index::IvfIndex loaded;
  util::Status s = LoadIvf(Path("ivf_v2.bin"), &loaded);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_FALSE(loaded.has_codes());
  EXPECT_EQ(loaded.bucket_offsets(), ivf.bucket_offsets());
  EXPECT_EQ(loaded.ids(), ivf.ids());
}

TEST_F(PersistTest, IvfV3TruncatedCodeSectionFails) {
  IvfWithCodes fixture;
  ASSERT_TRUE(SaveIvf(Path("ivf_v3_t.bin"), fixture.ivf).ok());
  Truncate(Path("ivf_v3_t.bin"), 16);
  index::IvfIndex loaded;
  util::Status s = LoadIvf(Path("ivf_v3_t.bin"), &loaded);
  EXPECT_EQ(s.code(), util::StatusCode::kCorruption);
  EXPECT_FALSE(s.message().empty());
}

TEST_F(PersistTest, IvfV3MissizedCodePayloadFails) {
  // Hand-write v3 files whose code payload disagrees with n * stride —
  // one short, one long. Both must be rejected (ValidateCsr-style) instead
  // of constructing a store that would be misindexed at scan time.
  IvfWithCodes fixture;
  const index::IvfIndex& ivf = fixture.ivf;
  const quant::CodeStore& codes = ivf.codes();
  for (int delta : {-4, 4}) {
    const std::string path =
        Path(delta < 0 ? "ivf_v3_short.bin" : "ivf_v3_long.bin");
    {
      BinaryWriter writer(path);
      const char magic[8] = {'R', 'I', 'I', 'V', 'F', 'I', 'X', '1'};
      WriteHeader(writer, magic, /*version=*/3);
      writer.Write(ivf.size());
      writer.Write(ivf.centroids().rows());
      writer.Write(ivf.centroids().cols());
      writer.WriteFloats(ivf.centroids().data(), ivf.centroids().size());
      writer.Write<int32_t>(ivf.num_clusters());
      writer.WriteVector(ivf.bucket_offsets());
      writer.WriteVector(ivf.ids());
      writer.Write<uint8_t>(1);
      writer.Write<int64_t>(codes.code_size());
      writer.Write<int32_t>(codes.num_sidecars());
      writer.WriteString(codes.tag());
      std::vector<uint8_t> data = CodeBytes(codes);
      data.resize(data.size() + delta, 0);
      writer.WriteVector(data);
      ASSERT_TRUE(writer.ok());
    }
    index::IvfIndex loaded;
    util::Status s = LoadIvf(path, &loaded);
    EXPECT_FALSE(s.ok()) << "delta=" << delta;
    EXPECT_NE(s.message().find("code section"), std::string::npos)
        << s.ToString();
  }
}

TEST_F(PersistTest, IvfV4PackingTagMismatchFails) {
  // A v4 code section whose packing byte disagrees with the tag's "/pk4"
  // marker must be rejected: accepting it would let a packed store
  // tag-match a byte-per-code computer and be misindexed at scan time.
  IvfWithCodes fixture;
  const index::IvfIndex& ivf = fixture.ivf;
  const quant::CodeStore& codes = ivf.codes();
  ASSERT_EQ(codes.packing(), quant::CodePacking::kBytePerCode);
  {
    BinaryWriter writer(Path("ivf_v4_mismatch.bin"));
    const char magic[8] = {'R', 'I', 'I', 'V', 'F', 'I', 'X', '1'};
    WriteHeader(writer, magic, /*version=*/4);
    writer.Write(ivf.size());
    writer.Write(ivf.centroids().rows());
    writer.Write(ivf.centroids().cols());
    writer.WriteFloats(ivf.centroids().data(), ivf.centroids().size());
    writer.Write<int32_t>(ivf.num_clusters());
    writer.WriteVector(ivf.bucket_offsets());
    writer.WriteVector(ivf.ids());
    writer.Write<uint8_t>(1);
    writer.Write<int64_t>(codes.code_size());
    writer.Write<int32_t>(codes.num_sidecars());
    // Claim packed records under a tag without the "/pk4" marker.
    writer.Write<uint8_t>(
        static_cast<uint8_t>(quant::CodePacking::kPacked4));
    writer.WriteString(codes.tag());
    writer.WriteVector(CodeBytes(codes));
    ASSERT_TRUE(writer.ok());
  }
  index::IvfIndex loaded;
  util::Status s = LoadIvf(Path("ivf_v4_mismatch.bin"), &loaded);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("packing disagrees"), std::string::npos)
      << s.ToString();
}

TEST_F(PersistTest, IvfV3CodesSurviveSearchAfterLoad) {
  // End-to-end: the loaded index's code-resident search must equal the
  // in-memory index's search through the same estimator data.
  IvfWithCodes fixture;
  ASSERT_TRUE(SaveIvf(Path("ivf_v3_s.bin"), fixture.ivf).ok());
  index::IvfIndex loaded;
  util::Status s = LoadIvf(Path("ivf_v3_s.bin"), &loaded);
  ASSERT_TRUE(s.ok()) << s.ToString();

  core::TrainingDataOptions training;
  training.max_queries = 40;
  core::SqAdcEstimator trainer(&fixture.sq);
  core::LinearCorrector corrector = core::TrainAnyCorrector(
      trainer, fixture.ds.base, fixture.ds.train_queries, training);
  core::DdcAnyComputer a(&fixture.ds.base,
                         std::make_unique<core::SqAdcEstimator>(&fixture.sq),
                         &corrector);
  core::DdcAnyComputer b(&fixture.ds.base,
                         std::make_unique<core::SqAdcEstimator>(&fixture.sq),
                         &corrector);
  for (int64_t q = 0; q < fixture.ds.queries.rows(); ++q) {
    auto want = fixture.ivf.Search(a, fixture.ds.queries.Row(q), 5, 3);
    auto got = loaded.Search(b, fixture.ds.queries.Row(q), 5, 3);
    ASSERT_EQ(want.size(), got.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(want[i].id, got[i].id);
      EXPECT_EQ(want[i].distance, got[i].distance);
    }
  }
}

// --- v6 storage-backend section ---------------------------------------------

TEST_F(PersistTest, MatrixMappedLoadIsZeroCopyAndBitIdentical) {
  linalg::Matrix m = testing::RandomMatrix(37, 11, 329);
  ASSERT_TRUE(SaveMatrix(Path("m_map.bin"), m).ok());

  MappedMatrix mapped;
  util::Status s = LoadMatrixMapped(Path("m_map.bin"), &mapped,
                                    storage::StorageBackend::kMmap);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(mapped.backend, storage::StorageBackend::kMmap);
  EXPECT_TRUE(mapped.matrix.is_view());
  ASSERT_EQ(mapped.matrix.rows(), m.rows());
  ASSERT_EQ(mapped.matrix.cols(), m.cols());
  // The floats are served in place from the mapping's pin, at the aligned
  // offset the v3 layout promises. (Const access: the mutable data()
  // overload is off-limits on views.)
  const linalg::Matrix& view = mapped.matrix;
  ASSERT_FALSE(mapped.pin.empty());
  EXPECT_EQ(reinterpret_cast<const uint8_t*>(view.data()),
            mapped.pin.data());
  EXPECT_EQ(mapped.pin.size(),
            static_cast<int64_t>(sizeof(float)) * m.rows() * m.cols());
  EXPECT_EQ(reinterpret_cast<uintptr_t>(view.data()) % 64, 0u);
  EXPECT_EQ(linalg::MaxAbsDifference(m, mapped.matrix), 0.0);
}

TEST_F(PersistTest, MatrixMappedMemoryBackendOwnsItsFloats) {
  linalg::Matrix m = testing::RandomMatrix(5, 9, 330);
  ASSERT_TRUE(SaveMatrix(Path("m_heap.bin"), m).ok());
  MappedMatrix mapped;
  util::Status s = LoadMatrixMapped(Path("m_heap.bin"), &mapped,
                                    storage::StorageBackend::kMemory);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(mapped.backend, storage::StorageBackend::kMemory);
  EXPECT_FALSE(mapped.matrix.is_view());
  EXPECT_TRUE(mapped.pin.empty());
  EXPECT_EQ(linalg::MaxAbsDifference(m, mapped.matrix), 0.0);
}

TEST_F(PersistTest, IvfV6MmapLoadIsBitIdenticalToMemoryLoad) {
  IvfWithCodes fixture;
  ASSERT_TRUE(SaveIvf(Path("ivf_v6_rt.bin"), fixture.ivf).ok());

  index::IvfIndex mem;
  index::IvfIndex map;
  IvfLoadOptions memory_options;
  memory_options.backend = storage::StorageBackend::kMemory;
  IvfLoadOptions mmap_options;
  mmap_options.backend = storage::StorageBackend::kMmap;
  util::Status s = LoadIvf(Path("ivf_v6_rt.bin"), &mem, memory_options);
  ASSERT_TRUE(s.ok()) << s.ToString();
  s = LoadIvf(Path("ivf_v6_rt.bin"), &map, mmap_options);
  ASSERT_TRUE(s.ok()) << s.ToString();

  ASSERT_TRUE(mem.has_codes());
  ASSERT_TRUE(map.has_codes());
  EXPECT_EQ(mem.codes().storage_backend(), storage::StorageBackend::kMemory);
  EXPECT_EQ(map.codes().storage_backend(), storage::StorageBackend::kMmap);
  // v6 places the record bytes at a 64-byte-aligned file offset so the
  // mapped store can serve them in place.
  EXPECT_EQ(reinterpret_cast<uintptr_t>(map.codes().data()) % 64, 0u);
  EXPECT_EQ(CodeBytes(map.codes()), CodeBytes(mem.codes()));
  EXPECT_EQ(map.codes().tag(), mem.codes().tag());
  EXPECT_EQ(map.bucket_offsets(), mem.bucket_offsets());
  EXPECT_EQ(map.ids(), mem.ids());

  // Code-resident searches through both loads must agree bit for bit.
  core::TrainingDataOptions training;
  training.max_queries = 40;
  core::SqAdcEstimator trainer(&fixture.sq);
  core::LinearCorrector corrector = core::TrainAnyCorrector(
      trainer, fixture.ds.base, fixture.ds.train_queries, training);
  core::DdcAnyComputer a(&fixture.ds.base,
                         std::make_unique<core::SqAdcEstimator>(&fixture.sq),
                         &corrector);
  core::DdcAnyComputer b(&fixture.ds.base,
                         std::make_unique<core::SqAdcEstimator>(&fixture.sq),
                         &corrector);
  for (int64_t q = 0; q < fixture.ds.queries.rows(); ++q) {
    auto want = mem.Search(a, fixture.ds.queries.Row(q), 5, 3);
    auto got = map.Search(b, fixture.ds.queries.Row(q), 5, 3);
    ASSERT_EQ(want.size(), got.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(want[i].id, got[i].id);
      EXPECT_EQ(want[i].distance, got[i].distance);
    }
  }
}

TEST_F(PersistTest, ListSectionsReportsTheV6Envelope) {
  IvfWithCodes fixture;
  ASSERT_TRUE(SaveIvf(Path("ivf_ls.bin"), fixture.ivf).ok());

  std::vector<SectionInfo> sections;
  std::string format;
  uint32_t version = 0;
  util::Status s = ListSections(Path("ivf_ls.bin"), &sections, &format,
                                &version);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(format, "ivf index");
  EXPECT_EQ(version, 6u);
  ASSERT_EQ(sections.size(), 4u);
  EXPECT_EQ(sections[0].name, "meta");
  EXPECT_EQ(sections[1].name, "centroids");
  EXPECT_EQ(sections[2].name, "buckets");
  EXPECT_EQ(sections[3].name, "codes");

  // Frames are in file order, non-overlapping, and inside the file.
  const auto file_size =
      static_cast<int64_t>(std::filesystem::file_size(Path("ivf_ls.bin")));
  int64_t prev_end = 0;
  for (const SectionInfo& sec : sections) {
    EXPECT_GE(sec.payload_offset, prev_end) << sec.name;
    EXPECT_GT(sec.payload_bytes, 0) << sec.name;
    prev_end = sec.payload_offset + sec.payload_bytes;
    EXPECT_LE(prev_end, file_size) << sec.name;
    EXPECT_EQ(sec.aligned, sec.payload_offset % 64 == 0) << sec.name;
  }

  // The record bytes sit at the tail of the codes payload, and v6 pads so
  // that tail begins at a 64-byte-aligned file offset — the property the
  // zero-copy mmap load relies on.
  const SectionInfo& codes = sections[3];
  const int64_t record_bytes = fixture.ivf.codes().data_bytes();
  ASSERT_GE(codes.payload_bytes, record_bytes);
  EXPECT_EQ((codes.payload_offset + codes.payload_bytes - record_bytes) % 64,
            0);
}

TEST_F(PersistTest, ListSectionsRejectsPreEnvelopeAndForeignFiles) {
  // Pre-checksum versions have no section frames to walk.
  {
    BinaryWriter writer(Path("ivf_old.bin"));
    const char magic[8] = {'R', 'I', 'I', 'V', 'F', 'I', 'X', '1'};
    WriteHeader(writer, magic, /*version=*/2);
    ASSERT_TRUE(writer.ok());
  }
  std::vector<SectionInfo> sections;
  util::Status s = ListSections(Path("ivf_old.bin"), &sections);
  EXPECT_EQ(s.code(), util::StatusCode::kFailedPrecondition) << s.ToString();

  // Unknown magic is InvalidArgument, same as VerifyFile.
  {
    std::ofstream f(Path("junk.bin"), std::ios::binary);
    f << "NOTPERSISTFILE__";
  }
  s = ListSections(Path("junk.bin"), &sections);
  EXPECT_EQ(s.code(), util::StatusCode::kInvalidArgument) << s.ToString();
}

TEST_F(PersistTest, DdcArtifactsRoundTripIdenticalDecisions) {
  data::Dataset ds = testing::SmallDataset(2000, 32, 1.0, 310, 8, 100);
  linalg::PcaModel pca =
      linalg::PcaModel::Fit(ds.base.data(), ds.size(), ds.dim());
  linalg::Matrix rotated = pca.TransformBatch(ds.base.data(), ds.size());
  core::DdcPcaOptions pca_options;
  pca_options.init_dim = 8;
  pca_options.delta_dim = 16;
  pca_options.training.max_queries = 60;
  core::DdcPcaArtifacts artifacts = core::TrainDdcPca(
      pca, rotated, ds.base, ds.train_queries, pca_options);

  util::Status s = SaveDdcPcaArtifacts(Path("dpca.bin"), artifacts);
  ASSERT_TRUE(s.ok()) << s.ToString();
  core::DdcPcaArtifacts loaded;
  s = LoadDdcPcaArtifacts(Path("dpca.bin"), &loaded);
  ASSERT_TRUE(s.ok()) << s.ToString();
  ASSERT_EQ(loaded.stage_dims, artifacts.stage_dims);
  for (std::size_t st = 0; st < loaded.correctors.size(); ++st) {
    EXPECT_EQ(loaded.correctors[st].w_approx(),
              artifacts.correctors[st].w_approx());
    EXPECT_EQ(loaded.correctors[st].bias(), artifacts.correctors[st].bias());
  }

  // Decisions must be bit-identical through a computer.
  core::DdcPcaComputer original(&pca, &rotated, &artifacts);
  core::DdcPcaComputer restored(&pca, &rotated, &loaded);
  original.BeginQuery(ds.queries.Row(0));
  restored.BeginQuery(ds.queries.Row(0));
  for (int64_t i = 0; i < 200; ++i) {
    auto a = original.EstimateWithThreshold(i, 5.0f);
    auto b = restored.EstimateWithThreshold(i, 5.0f);
    EXPECT_EQ(a.pruned, b.pruned);
    EXPECT_EQ(a.distance, b.distance);
  }
}

TEST_F(PersistTest, DdcOpqArtifactsRoundTrip) {
  data::Dataset ds = testing::SmallDataset(1500, 16, 1.0, 311, 8, 100);
  core::DdcOpqOptions options;
  options.opq.pq.num_subspaces = 4;
  options.opq.pq.nbits = 5;
  options.opq.num_iterations = 2;
  options.training.max_queries = 60;
  core::DdcOpqArtifacts artifacts =
      core::TrainDdcOpq(ds.base, ds.train_queries, options);

  util::Status s = SaveDdcOpqArtifacts(Path("dopq.bin"), artifacts);
  ASSERT_TRUE(s.ok()) << s.ToString();
  core::DdcOpqArtifacts loaded;
  s = LoadDdcOpqArtifacts(Path("dopq.bin"), &loaded);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(loaded.codes, artifacts.codes);
  EXPECT_EQ(loaded.recon_errors, artifacts.recon_errors);

  core::DdcOpqComputer original(&ds.base, &artifacts);
  core::DdcOpqComputer restored(&ds.base, &loaded);
  original.BeginQuery(ds.queries.Row(1));
  restored.BeginQuery(ds.queries.Row(1));
  for (int64_t i = 0; i < 200; ++i) {
    auto a = original.EstimateWithThreshold(i, 5.0f);
    auto b = restored.EstimateWithThreshold(i, 5.0f);
    EXPECT_EQ(a.pruned, b.pruned);
    EXPECT_EQ(a.distance, b.distance);
  }
}

TEST_F(PersistTest, MissingFileFails) {
  linalg::Matrix m;
  linalg::PcaModel pca;
  index::HnswIndex hnsw;
  EXPECT_EQ(LoadMatrix(Path("nope.bin"), &m).code(),
            util::StatusCode::kNotFound);
  EXPECT_EQ(LoadPca(Path("nope.bin"), &pca).code(),
            util::StatusCode::kNotFound);
  EXPECT_EQ(LoadHnsw(Path("nope.bin"), &hnsw).code(),
            util::StatusCode::kNotFound);
}

TEST_F(PersistTest, RqRoundTripIdenticalCodes) {
  data::Dataset ds = testing::SmallDataset(800, 16, 0.8, 311);
  quant::RqOptions options;
  options.num_stages = 3;
  options.nbits = 5;
  quant::RqCodebook rq =
      quant::RqCodebook::Train(ds.base.data(), ds.size(), 16, options);
  util::Status s = SaveRq(Path("rq.bin"), rq);
  ASSERT_TRUE(s.ok()) << s.ToString();
  quant::RqCodebook loaded;
  s = LoadRq(Path("rq.bin"), &loaded);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(loaded.dim(), rq.dim());
  EXPECT_EQ(loaded.num_stages(), rq.num_stages());
  std::vector<uint8_t> a(rq.code_size()), b(rq.code_size());
  for (int64_t i = 0; i < 40; ++i) {
    rq.Encode(ds.base.Row(i), a.data());
    loaded.Encode(ds.base.Row(i), b.data());
    EXPECT_EQ(a, b);
  }
}

TEST_F(PersistTest, RqTruncatedFails) {
  data::Dataset ds = testing::SmallDataset(500, 8, 0.8, 312);
  quant::RqOptions options;
  options.num_stages = 2;
  options.nbits = 4;
  quant::RqCodebook rq =
      quant::RqCodebook::Train(ds.base.data(), ds.size(), 8, options);
  ASSERT_TRUE(SaveRq(Path("rq_trunc.bin"), rq).ok());
  Truncate(Path("rq_trunc.bin"), 16);
  quant::RqCodebook loaded;
  util::Status s = LoadRq(Path("rq_trunc.bin"), &loaded);
  EXPECT_EQ(s.code(), util::StatusCode::kCorruption);
  EXPECT_FALSE(s.message().empty());
}

TEST_F(PersistTest, SqRoundTripIdenticalCodes) {
  data::Dataset ds = testing::SmallDataset(600, 12, 0.5, 313);
  quant::SqCodebook sq =
      quant::SqCodebook::Train(ds.base.data(), ds.size(), 12);
  util::Status s = SaveSq(Path("sq.bin"), sq);
  ASSERT_TRUE(s.ok()) << s.ToString();
  quant::SqCodebook loaded;
  s = LoadSq(Path("sq.bin"), &loaded);
  ASSERT_TRUE(s.ok()) << s.ToString();
  std::vector<uint8_t> a(12), b(12);
  for (int64_t i = 0; i < 40; ++i) {
    sq.Encode(ds.base.Row(i), a.data());
    loaded.Encode(ds.base.Row(i), b.data());
    EXPECT_EQ(a, b);
  }
}

TEST_F(PersistTest, SqCorruptStepFails) {
  // Hand-write a pre-checksum v1 SQ file with a negative step: the range
  // validation (not a checksum) must reject it.
  {
    BinaryWriter writer(Path("sq_bad.bin"));
    const char magic[8] = {'R', 'I', 'S', 'Q', 'C', 'B', 'K', '1'};
    WriteHeader(writer, magic, /*version=*/1);
    writer.WriteVector(std::vector<float>{0.0f, 1.0f, 2.0f, 3.0f});
    writer.WriteVector(std::vector<float>{0.5f, -1.0f, 0.5f, 0.5f});
    ASSERT_TRUE(writer.Close());
  }
  quant::SqCodebook loaded;
  util::Status s = LoadSq(Path("sq_bad.bin"), &loaded);
  EXPECT_EQ(s.code(), util::StatusCode::kCorruption);
  EXPECT_NE(s.message().find("step"), std::string::npos) << s.ToString();
}

TEST_F(PersistTest, CorrectorRoundTripIdenticalDecisions) {
  core::LinearCorrector corrector =
      core::LinearCorrector::FromWeights(1.25f, -0.75f, 0.5f, -2.0f, true);
  util::Status s = SaveCorrector(Path("corr.bin"), corrector);
  ASSERT_TRUE(s.ok()) << s.ToString();
  core::LinearCorrector loaded;
  s = LoadCorrector(Path("corr.bin"), &loaded);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(loaded.trained(), corrector.trained());
  for (float approx : {0.5f, 1.0f, 4.0f}) {
    for (float tau : {0.25f, 2.0f}) {
      EXPECT_EQ(loaded.PredictPrunable(approx, tau, 0.1f),
                corrector.PredictPrunable(approx, tau, 0.1f));
    }
  }
}

TEST_F(PersistTest, CorrectorWrongMagicFails) {
  linalg::Matrix m = testing::RandomMatrix(2, 2, 315);
  ASSERT_TRUE(SaveMatrix(Path("not_corr.bin"), m).ok());
  core::LinearCorrector loaded;
  util::Status s = LoadCorrector(Path("not_corr.bin"), &loaded);
  EXPECT_EQ(s.code(), util::StatusCode::kInvalidArgument);
  EXPECT_FALSE(s.message().empty());
}

TEST_F(PersistTest, DdcRqCascadeRoundTripIdenticalDecisions) {
  data::Dataset ds = testing::SmallDataset(900, 16, 0.8, 321, 8, 120);
  core::DdcRqCascadeOptions options;
  options.rq.nbits = 5;
  options.levels = {2, 4};
  options.training.max_queries = 60;
  core::DdcRqCascadeArtifacts artifacts =
      core::TrainDdcRqCascade(ds.base, ds.train_queries, options);
  util::Status s = SaveDdcRqCascadeArtifacts(Path("cascade.bin"), artifacts);
  ASSERT_TRUE(s.ok()) << s.ToString();
  core::DdcRqCascadeArtifacts loaded;
  s = LoadDdcRqCascadeArtifacts(Path("cascade.bin"), &loaded);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(loaded.levels, artifacts.levels);
  EXPECT_EQ(loaded.codes, artifacts.codes);
  ASSERT_EQ(loaded.correctors.size(), artifacts.correctors.size());

  // The loaded artifacts must reproduce the original computer's
  // prune/keep decisions bit-for-bit.
  core::DdcRqCascadeComputer original(&ds.base, &artifacts);
  core::DdcRqCascadeComputer rebuilt(&ds.base, &loaded);
  for (int64_t q = 0; q < ds.queries.rows(); ++q) {
    original.BeginQuery(ds.queries.Row(q));
    rebuilt.BeginQuery(ds.queries.Row(q));
    std::vector<data::Neighbor> nn =
        data::BruteForceKnnSingle(ds.base, ds.queries.Row(q), 5);
    const float tau = nn.back().distance;
    for (int64_t i = 0; i < ds.size(); i += 17) {
      index::EstimateResult a = original.EstimateWithThreshold(i, tau);
      index::EstimateResult b = rebuilt.EstimateWithThreshold(i, tau);
      EXPECT_EQ(a.pruned, b.pruned);
      EXPECT_FLOAT_EQ(a.distance, b.distance);
    }
  }
}

TEST_F(PersistTest, DdcRqCascadeTruncatedFails) {
  data::Dataset ds = testing::SmallDataset(400, 8, 0.8, 322, 4, 60);
  core::DdcRqCascadeOptions options;
  options.rq.nbits = 4;
  options.levels = {1, 2};
  options.training.max_queries = 30;
  core::DdcRqCascadeArtifacts artifacts =
      core::TrainDdcRqCascade(ds.base, ds.train_queries, options);
  ASSERT_TRUE(
      SaveDdcRqCascadeArtifacts(Path("cascade_trunc.bin"), artifacts).ok());
  Truncate(Path("cascade_trunc.bin"), 8);
  core::DdcRqCascadeArtifacts loaded;
  util::Status s = LoadDdcRqCascadeArtifacts(Path("cascade_trunc.bin"),
                                             &loaded);
  EXPECT_EQ(s.code(), util::StatusCode::kCorruption);
  EXPECT_FALSE(s.message().empty());
}

}  // namespace
}  // namespace resinfer::persist

#include "quant/code_store.h"

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

namespace resinfer::quant {
namespace {

TEST(CodeStoreTest, LayoutPadsSidecarsToFourByteAlignment) {
  EXPECT_EQ(CodeSidecarOffset(1), 4);
  EXPECT_EQ(CodeSidecarOffset(4), 4);
  EXPECT_EQ(CodeSidecarOffset(5), 8);
  EXPECT_EQ(CodeRecordStride(1, 0), 4);
  EXPECT_EQ(CodeRecordStride(6, 2), 16);
  EXPECT_EQ(CodeRecordStride(8, 1), 12);

  CodeStore store(3, 6, 2, "t");
  EXPECT_EQ(store.stride(), 16);
  EXPECT_EQ(store.sidecar_offset(), 8);
  EXPECT_EQ(store.data_bytes(), 48);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(store.record(1)) % 4, 0u);
}

TEST(CodeStoreTest, SetAndReadBackCodesAndSidecars) {
  CodeStore store(4, 3, 2, "tag");
  for (int64_t i = 0; i < 4; ++i) {
    const uint8_t code[3] = {static_cast<uint8_t>(i),
                             static_cast<uint8_t>(10 + i),
                             static_cast<uint8_t>(20 + i)};
    store.SetCode(i, code);
    store.SetSidecar(i, 0, 0.5f * static_cast<float>(i));
    store.SetSidecar(i, 1, -1.0f * static_cast<float>(i));
  }
  for (int64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(store.record(i)[0], i);
    EXPECT_EQ(store.record(i)[2], 20 + i);
    EXPECT_EQ(store.Sidecar(i, 0), 0.5f * static_cast<float>(i));
    EXPECT_EQ(store.Sidecar(i, 1), -1.0f * static_cast<float>(i));
    EXPECT_EQ(RecordSidecars(store.record(i), store.code_size())[1],
              store.Sidecar(i, 1));
  }
}

TEST(CodeStoreTest, PermutedByReordersWholeRecords) {
  CodeStore store(5, 2, 1, "tag");
  for (int64_t i = 0; i < 5; ++i) {
    const uint8_t code[2] = {static_cast<uint8_t>(i),
                             static_cast<uint8_t>(100 + i)};
    store.SetCode(i, code);
    store.SetSidecar(i, 0, static_cast<float>(i) + 0.25f);
  }
  const std::vector<int64_t> order = {3, 0, 4, 4, 1};
  CodeStore permuted = store.PermutedBy(order);
  ASSERT_EQ(permuted.size(), 5);
  EXPECT_EQ(permuted.tag(), "tag");
  EXPECT_EQ(permuted.stride(), store.stride());
  for (std::size_t j = 0; j < order.size(); ++j) {
    EXPECT_EQ(permuted.record(j)[0], order[j]);
    EXPECT_EQ(permuted.record(j)[1], 100 + order[j]);
    EXPECT_EQ(permuted.Sidecar(j, 0), static_cast<float>(order[j]) + 0.25f);
  }
}

// All the record bytes of a store as an independent vector (the old raw()
// accessor, now spelled through the data pointer).
std::vector<uint8_t> BytesOf(const CodeStore& store) {
  return std::vector<uint8_t>(store.data(), store.data() + store.data_bytes());
}

TEST(CodeStoreTest, FromPartsRoundTrip) {
  CodeStore store(3, 5, 1, "method/cs5/sc1/n3");
  for (int64_t i = 0; i < 3; ++i) {
    const uint8_t code[5] = {1, 2, 3, 4, static_cast<uint8_t>(i)};
    store.SetCode(i, code);
    store.SetSidecar(i, 0, 7.0f);
  }
  CodeStore loaded;
  util::Status s =
      CodeStore::FromParts(3, 5, 1, store.tag(), BytesOf(store), &loaded);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(BytesOf(loaded), BytesOf(store));
  EXPECT_EQ(loaded.tag(), store.tag());
  EXPECT_EQ(loaded.stride(), store.stride());
}

TEST(CodeStoreTest, FromPartsRejectsMismatchedPayload) {
  CodeStore store(3, 5, 1, "t");
  CodeStore out;

  std::vector<uint8_t> truncated = BytesOf(store);
  truncated.pop_back();
  util::Status s = CodeStore::FromParts(3, 5, 1, "t", truncated, &out);
  EXPECT_EQ(s.code(), util::StatusCode::kCorruption);
  EXPECT_FALSE(s.message().empty());

  std::vector<uint8_t> oversized = BytesOf(store);
  oversized.push_back(0);
  EXPECT_FALSE(CodeStore::FromParts(3, 5, 1, "t", oversized, &out).ok());

  EXPECT_FALSE(CodeStore::FromParts(3, 0, 1, "t", BytesOf(store), &out).ok());
  EXPECT_FALSE(CodeStore::FromParts(-1, 5, 1, "t", BytesOf(store), &out).ok());
  EXPECT_FALSE(CodeStore::FromParts(3, 5, -1, "t", BytesOf(store), &out).ok());

  // Hostile code_size crafted so that n * stride would signed-overflow and
  // wrap to the real payload size (n = 12, 96-byte payload): must be
  // rejected by the bound/division checks, never accepted.
  std::vector<uint8_t> payload(96, 0);
  s = CodeStore::FromParts(12, (int64_t{1} << 62) + 2, 0, "t", payload, &out);
  EXPECT_FALSE(s.ok());
  EXPECT_FALSE(s.message().empty());
}

// Fills a store with deterministic per-record content for the sharing
// tests: code bytes {i, 7+i}, sidecar 1.5*i.
CodeStore FilledStore(int64_t n) {
  CodeStore store(n, 2, 1, "shared");
  for (int64_t i = 0; i < n; ++i) {
    const uint8_t code[2] = {static_cast<uint8_t>(i),
                             static_cast<uint8_t>(7 + i)};
    store.SetCode(i, code);
    store.SetSidecar(i, 0, 1.5f * static_cast<float>(i));
  }
  return store;
}

TEST(CodeStoreTest, ShareViewIsZeroCopyAndImmutable) {
  CodeStore store = FilledStore(6);
  CodeStore view = store.ShareView();
  // No bytes move: the view aliases the source's storage handle.
  EXPECT_EQ(view.data(), store.data());
  EXPECT_TRUE(view.storage().SharesOwnerWith(store.storage()));
  EXPECT_TRUE(view.is_view());
  EXPECT_FALSE(store.is_view());
  EXPECT_EQ(view.size(), store.size());
  EXPECT_EQ(view.stride(), store.stride());
  EXPECT_EQ(view.tag(), store.tag());
  EXPECT_EQ(view.packing(), store.packing());
  EXPECT_EQ(view.storage_backend(), store.storage_backend());
  EXPECT_EQ(view.Sidecar(3, 0), 4.5f);
}

TEST(CodeStoreTest, ShareViewKeepsBytesAliveAfterTheSourceDies) {
  CodeStore view;
  {
    CodeStore store = FilledStore(5);
    view = store.ShareView();
  }  // the source handle drops here; the view still pins the allocation
  ASSERT_EQ(view.size(), 5);
  for (int64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(view.record(i)[0], static_cast<uint8_t>(i)) << i;
    EXPECT_EQ(view.record(i)[1], static_cast<uint8_t>(7 + i)) << i;
    EXPECT_EQ(view.Sidecar(i, 0), 1.5f * static_cast<float>(i)) << i;
  }
}

TEST(CodeStoreTest, CloneIsDeepAndIndependentlyMutable) {
  CodeStore store = FilledStore(4);
  CodeStore clone = store.Clone();
  ASSERT_EQ(clone.size(), 4);
  EXPECT_NE(clone.data(), store.data());
  EXPECT_FALSE(clone.storage().SharesOwnerWith(store.storage()));
  EXPECT_EQ(BytesOf(clone), BytesOf(store));
  EXPECT_FALSE(clone.is_view());
  // Clones are mutable; the source must not see the write.
  clone.SetSidecar(2, 0, -9.0f);
  EXPECT_EQ(clone.Sidecar(2, 0), -9.0f);
  EXPECT_EQ(store.Sidecar(2, 0), 3.0f);
}

TEST(CodeStoreTest, FromBlobWrapsBytesWithoutCopying) {
  CodeStore source = FilledStore(6);
  storage::Blob blob = storage::Blob::CopyOf(source.data(),
                                             source.data_bytes());
  const uint8_t* backing = blob.data();
  CodeStore out;
  util::Status s =
      CodeStore::FromBlob(6, 2, 1, "shared", std::move(blob), &out,
                          CodePacking::kBytePerCode,
                          storage::StorageBackend::kMmap);
  ASSERT_TRUE(s.ok()) << s.ToString();
  // The store serves the blob's bytes in place and records their home.
  EXPECT_EQ(out.data(), backing);
  EXPECT_TRUE(out.is_view());
  EXPECT_EQ(out.storage_backend(), storage::StorageBackend::kMmap);
  EXPECT_EQ(BytesOf(out), BytesOf(source));
}

TEST(CodeStoreTest, FromBlobRejectsMismatchedPayload) {
  // One byte short of 3 records x stride 8: off-disk bytes must be
  // rejected recoverably, exactly like FromParts.
  storage::Blob truncated = storage::Blob::AllocateAligned(23);
  CodeStore out;
  util::Status s = CodeStore::FromBlob(3, 2, 1, "t", std::move(truncated),
                                       &out);
  EXPECT_FALSE(s.ok());
  EXPECT_FALSE(s.message().empty());
}

TEST(CodeStoreTest, MakeCodeTagEncodesLayoutAndFingerprint) {
  EXPECT_EQ(MakeCodeTag("pq-adc", 8, 1, 1200, 77),
            "pq-adc/cs8/sc1/n1200/f77");
}

TEST(CodeStoreTest, FingerprintDistinguishesContent) {
  const uint8_t a[4] = {1, 2, 3, 4};
  const uint8_t b[4] = {1, 2, 3, 5};
  EXPECT_EQ(FingerprintBytes(a, 4), FingerprintBytes(a, 4));
  EXPECT_NE(FingerprintBytes(a, 4), FingerprintBytes(b, 4));
  // Chaining through the seed mixes both arrays into one value.
  EXPECT_NE(FingerprintBytes(b, 4, FingerprintBytes(a, 4)),
            FingerprintBytes(a, 4, FingerprintBytes(b, 4)));
}

TEST(CodeStoreTest, FingerprintArraySamplesLargeInputs) {
  // Above the sampling threshold the fingerprint stays deterministic,
  // length-sensitive, and sensitive to sampled-region changes.
  std::vector<uint8_t> big(1 << 20, 7);
  EXPECT_EQ(FingerprintArray(big.data(), big.size()),
            FingerprintArray(big.data(), big.size()));
  EXPECT_NE(FingerprintArray(big.data(), big.size()),
            FingerprintArray(big.data(), big.size() - 1));
  std::vector<uint8_t> changed(big);
  changed.front() ^= 0xff;  // first chunk is always sampled
  EXPECT_NE(FingerprintArray(big.data(), big.size()),
            FingerprintArray(changed.data(), changed.size()));
  // Small inputs hash in full.
  const uint8_t small1[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  const uint8_t small2[8] = {1, 2, 3, 4, 5, 6, 7, 9};
  EXPECT_NE(FingerprintArray(small1, 8), FingerprintArray(small2, 8));
}

}  // namespace
}  // namespace resinfer::quant

#include "quant/code_store.h"

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

namespace resinfer::quant {
namespace {

TEST(CodeStoreTest, LayoutPadsSidecarsToFourByteAlignment) {
  EXPECT_EQ(CodeSidecarOffset(1), 4);
  EXPECT_EQ(CodeSidecarOffset(4), 4);
  EXPECT_EQ(CodeSidecarOffset(5), 8);
  EXPECT_EQ(CodeRecordStride(1, 0), 4);
  EXPECT_EQ(CodeRecordStride(6, 2), 16);
  EXPECT_EQ(CodeRecordStride(8, 1), 12);

  CodeStore store(3, 6, 2, "t");
  EXPECT_EQ(store.stride(), 16);
  EXPECT_EQ(store.sidecar_offset(), 8);
  EXPECT_EQ(store.data_bytes(), 48);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(store.record(1)) % 4, 0u);
}

TEST(CodeStoreTest, SetAndReadBackCodesAndSidecars) {
  CodeStore store(4, 3, 2, "tag");
  for (int64_t i = 0; i < 4; ++i) {
    const uint8_t code[3] = {static_cast<uint8_t>(i),
                             static_cast<uint8_t>(10 + i),
                             static_cast<uint8_t>(20 + i)};
    store.SetCode(i, code);
    store.SetSidecar(i, 0, 0.5f * static_cast<float>(i));
    store.SetSidecar(i, 1, -1.0f * static_cast<float>(i));
  }
  for (int64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(store.record(i)[0], i);
    EXPECT_EQ(store.record(i)[2], 20 + i);
    EXPECT_EQ(store.Sidecar(i, 0), 0.5f * static_cast<float>(i));
    EXPECT_EQ(store.Sidecar(i, 1), -1.0f * static_cast<float>(i));
    EXPECT_EQ(RecordSidecars(store.record(i), store.code_size())[1],
              store.Sidecar(i, 1));
  }
}

TEST(CodeStoreTest, PermutedByReordersWholeRecords) {
  CodeStore store(5, 2, 1, "tag");
  for (int64_t i = 0; i < 5; ++i) {
    const uint8_t code[2] = {static_cast<uint8_t>(i),
                             static_cast<uint8_t>(100 + i)};
    store.SetCode(i, code);
    store.SetSidecar(i, 0, static_cast<float>(i) + 0.25f);
  }
  const std::vector<int64_t> order = {3, 0, 4, 4, 1};
  CodeStore permuted = store.PermutedBy(order);
  ASSERT_EQ(permuted.size(), 5);
  EXPECT_EQ(permuted.tag(), "tag");
  EXPECT_EQ(permuted.stride(), store.stride());
  for (std::size_t j = 0; j < order.size(); ++j) {
    EXPECT_EQ(permuted.record(j)[0], order[j]);
    EXPECT_EQ(permuted.record(j)[1], 100 + order[j]);
    EXPECT_EQ(permuted.Sidecar(j, 0), static_cast<float>(order[j]) + 0.25f);
  }
}

TEST(CodeStoreTest, FromPartsRoundTrip) {
  CodeStore store(3, 5, 1, "method/cs5/sc1/n3");
  for (int64_t i = 0; i < 3; ++i) {
    const uint8_t code[5] = {1, 2, 3, 4, static_cast<uint8_t>(i)};
    store.SetCode(i, code);
    store.SetSidecar(i, 0, 7.0f);
  }
  CodeStore loaded;
  util::Status s = CodeStore::FromParts(3, 5, 1, store.tag(),
                                        std::vector<uint8_t>(store.raw()),
                                        &loaded);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(loaded.raw(), store.raw());
  EXPECT_EQ(loaded.tag(), store.tag());
  EXPECT_EQ(loaded.stride(), store.stride());
}

TEST(CodeStoreTest, FromPartsRejectsMismatchedPayload) {
  CodeStore store(3, 5, 1, "t");
  CodeStore out;

  std::vector<uint8_t> truncated(store.raw());
  truncated.pop_back();
  util::Status s = CodeStore::FromParts(3, 5, 1, "t", truncated, &out);
  EXPECT_EQ(s.code(), util::StatusCode::kCorruption);
  EXPECT_FALSE(s.message().empty());

  std::vector<uint8_t> oversized(store.raw());
  oversized.push_back(0);
  EXPECT_FALSE(CodeStore::FromParts(3, 5, 1, "t", oversized, &out).ok());

  EXPECT_FALSE(CodeStore::FromParts(3, 0, 1, "t", store.raw(), &out).ok());
  EXPECT_FALSE(CodeStore::FromParts(-1, 5, 1, "t", store.raw(), &out).ok());
  EXPECT_FALSE(CodeStore::FromParts(3, 5, -1, "t", store.raw(), &out).ok());

  // Hostile code_size crafted so that n * stride would signed-overflow and
  // wrap to the real payload size (n = 12, 96-byte payload): must be
  // rejected by the bound/division checks, never accepted.
  std::vector<uint8_t> payload(96, 0);
  s = CodeStore::FromParts(12, (int64_t{1} << 62) + 2, 0, "t", payload, &out);
  EXPECT_FALSE(s.ok());
  EXPECT_FALSE(s.message().empty());
}

TEST(CodeStoreTest, MakeCodeTagEncodesLayoutAndFingerprint) {
  EXPECT_EQ(MakeCodeTag("pq-adc", 8, 1, 1200, 77),
            "pq-adc/cs8/sc1/n1200/f77");
}

TEST(CodeStoreTest, FingerprintDistinguishesContent) {
  const uint8_t a[4] = {1, 2, 3, 4};
  const uint8_t b[4] = {1, 2, 3, 5};
  EXPECT_EQ(FingerprintBytes(a, 4), FingerprintBytes(a, 4));
  EXPECT_NE(FingerprintBytes(a, 4), FingerprintBytes(b, 4));
  // Chaining through the seed mixes both arrays into one value.
  EXPECT_NE(FingerprintBytes(b, 4, FingerprintBytes(a, 4)),
            FingerprintBytes(a, 4, FingerprintBytes(b, 4)));
}

TEST(CodeStoreTest, FingerprintArraySamplesLargeInputs) {
  // Above the sampling threshold the fingerprint stays deterministic,
  // length-sensitive, and sensitive to sampled-region changes.
  std::vector<uint8_t> big(1 << 20, 7);
  EXPECT_EQ(FingerprintArray(big.data(), big.size()),
            FingerprintArray(big.data(), big.size()));
  EXPECT_NE(FingerprintArray(big.data(), big.size()),
            FingerprintArray(big.data(), big.size() - 1));
  std::vector<uint8_t> changed(big);
  changed.front() ^= 0xff;  // first chunk is always sampled
  EXPECT_NE(FingerprintArray(big.data(), big.size()),
            FingerprintArray(changed.data(), changed.size()));
  // Small inputs hash in full.
  const uint8_t small1[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  const uint8_t small2[8] = {1, 2, 3, 4, 5, 6, 7, 9};
  EXPECT_NE(FingerprintArray(small1, 8), FingerprintArray(small2, 8));
}

}  // namespace
}  // namespace resinfer::quant

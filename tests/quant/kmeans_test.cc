#include "quant/kmeans.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "simd/dispatch.h"
#include "test_util.h"
#include "util/rng.h"

namespace resinfer::quant {
namespace {

// Three well-separated 2-D blobs.
std::vector<float> ThreeBlobs(int per_cluster, uint64_t seed) {
  Rng rng(seed);
  const float centers[3][2] = {{0, 0}, {20, 0}, {0, 20}};
  std::vector<float> data;
  data.reserve(per_cluster * 3 * 2);
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < per_cluster; ++i) {
      data.push_back(centers[c][0] + static_cast<float>(rng.Gaussian()));
      data.push_back(centers[c][1] + static_cast<float>(rng.Gaussian()));
    }
  }
  return data;
}

TEST(KMeansTest, RecoversSeparatedClusters) {
  auto data = ThreeBlobs(100, 7);
  KMeansResult res = KMeans(data.data(), 300, 2, 3);
  // Every centroid should be near one of the true centers.
  const float centers[3][2] = {{0, 0}, {20, 0}, {0, 20}};
  for (int c = 0; c < 3; ++c) {
    float best = 1e30f;
    for (int t = 0; t < 3; ++t) {
      float dx = res.centroids.At(c, 0) - centers[t][0];
      float dy = res.centroids.At(c, 1) - centers[t][1];
      best = std::min(best, dx * dx + dy * dy);
    }
    EXPECT_LT(best, 2.0f);
  }
  // Points in the same blob share an assignment.
  for (int i = 1; i < 100; ++i) {
    EXPECT_EQ(res.assignments[i], res.assignments[0]);
    EXPECT_EQ(res.assignments[100 + i], res.assignments[100]);
    EXPECT_EQ(res.assignments[200 + i], res.assignments[200]);
  }
}

TEST(KMeansTest, InertiaDecreasesWithMoreClusters) {
  data::Dataset ds = testing::SmallDataset(1000, 16, 0.8, 8, 2, 2);
  double prev = 1e300;
  for (int k : {1, 4, 16}) {
    KMeansResult res = KMeans(ds.base.data(), 1000, 16, k);
    EXPECT_LT(res.inertia, prev + 1e-3);
    prev = res.inertia;
  }
}

TEST(KMeansTest, KEqualsNGivesZeroInertia) {
  auto data = ThreeBlobs(4, 9);  // 12 points
  KMeansResult res = KMeans(data.data(), 12, 2, 12);
  EXPECT_NEAR(res.inertia, 0.0, 1e-3);
}

TEST(KMeansTest, DeterministicInSeed) {
  data::Dataset ds = testing::SmallDataset(500, 8, 1.0, 10, 2, 2);
  KMeansOptions options;
  options.seed = 123;
  KMeansResult a = KMeans(ds.base.data(), 500, 8, 10, options);
  KMeansResult b = KMeans(ds.base.data(), 500, 8, 10, options);
  EXPECT_EQ(a.assignments, b.assignments);
  EXPECT_EQ(linalg::MaxAbsDifference(a.centroids, b.centroids), 0.0);
}

TEST(KMeansTest, NearestCentroidAgreesWithAssignments) {
  data::Dataset ds = testing::SmallDataset(400, 8, 1.0, 11, 2, 2);
  KMeansResult res = KMeans(ds.base.data(), 400, 8, 8);
  for (int64_t i = 0; i < 400; i += 37) {
    EXPECT_EQ(NearestCentroid(res.centroids, ds.base.Row(i)),
              res.assignments[i]);
  }
}

TEST(KMeansTest, NearestCentroidsSortedAndDistinct) {
  data::Dataset ds = testing::SmallDataset(300, 8, 1.0, 12, 2, 2);
  KMeansResult res = KMeans(ds.base.data(), 300, 8, 16);
  const float* q = ds.queries.Row(0);
  std::vector<int32_t> top = NearestCentroids(res.centroids, q, 5);
  ASSERT_EQ(top.size(), 5u);
  float prev = -1.0f;
  std::set<int32_t> seen;
  for (int32_t c : top) {
    float dist = 0.0f;
    NearestCentroid(res.centroids, q, &dist);  // just for the helper
    float d = 0.0f;
    {
      // distance to this centroid
      d = 0.0f;
      for (int64_t j = 0; j < 8; ++j) {
        float diff = res.centroids.At(c, j) - q[j];
        d += diff * diff;
      }
    }
    EXPECT_GE(d, prev);
    prev = d;
    EXPECT_TRUE(seen.insert(c).second);
  }
  EXPECT_EQ(top[0], NearestCentroid(res.centroids, q));
}

TEST(KMeansTest, NprobeClampedToK) {
  auto data = ThreeBlobs(10, 13);
  KMeansResult res = KMeans(data.data(), 30, 2, 3);
  EXPECT_EQ(NearestCentroids(res.centroids, data.data(), 10).size(), 3u);
}

TEST(KMeansTest, NearestCentroidsBatchMatchesPerQuery) {
  // The tiled ranking must return exactly the per-query lists — ids AND
  // order, ties included — across SIMD levels, tile-partial query counts,
  // and nprobe up to a full sweep.
  const int64_t d = 24;
  linalg::Matrix centroids = resinfer::testing::RandomMatrix(37, d, 21);
  linalg::Matrix queries = resinfer::testing::RandomMatrix(21, d, 22);

  for (simd::SimdLevel level : simd::SupportedLevels()) {
    simd::ScopedSimdLevel guard(level);
    for (int nprobe : {1, 5, 37}) {
      for (int64_t begin : {int64_t{0}, int64_t{3}}) {
        const int64_t count = queries.rows() - begin;
        std::vector<int32_t> batch(static_cast<std::size_t>(count * nprobe));
        NearestCentroidsBatch(centroids, queries, begin, count, nprobe,
                              batch.data());
        for (int64_t i = 0; i < count; ++i) {
          std::vector<int32_t> want =
              NearestCentroids(centroids, queries.Row(begin + i), nprobe);
          ASSERT_EQ(static_cast<int>(want.size()), nprobe);
          for (int p = 0; p < nprobe; ++p) {
            EXPECT_EQ(batch[static_cast<std::size_t>(i * nprobe + p)],
                      want[static_cast<std::size_t>(p)])
                << simd::SimdLevelName(level) << " nprobe=" << nprobe
                << " begin=" << begin << " i=" << i << " p=" << p;
          }
        }
      }
    }
  }
}

}  // namespace
}  // namespace resinfer::quant

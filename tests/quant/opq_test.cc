#include "quant/opq.h"

#include <gtest/gtest.h>

#include "linalg/orthogonal.h"
#include "simd/kernels.h"
#include "test_util.h"

namespace resinfer::quant {
namespace {

OpqOptions SmallOptions() {
  OpqOptions options;
  options.pq.num_subspaces = 4;
  options.pq.nbits = 5;
  options.pq.kmeans.max_iterations = 10;
  options.num_iterations = 3;
  return options;
}

TEST(OpqTest, RotationStaysOrthonormal) {
  data::Dataset ds = testing::SmallDataset(1500, 32, 1.2, 16);
  OpqModel opq = OpqModel::Train(ds.base.data(), ds.size(), 32,
                                 SmallOptions());
  EXPECT_TRUE(opq.trained());
  EXPECT_LT(linalg::OrthonormalityError(opq.rotation()), 1e-3);
}

TEST(OpqTest, RotationPreservesDistances) {
  data::Dataset ds = testing::SmallDataset(1000, 24, 1.0, 17);
  OpqOptions options = SmallOptions();
  options.pq.num_subspaces = 3;
  OpqModel opq = OpqModel::Train(ds.base.data(), ds.size(), 24, options);
  std::vector<float> ra(24), rb(24);
  for (int64_t i = 0; i < 5; ++i) {
    opq.Rotate(ds.base.Row(i), ra.data());
    opq.Rotate(ds.base.Row(i + 50), rb.data());
    float orig = simd::L2Sqr(ds.base.Row(i), ds.base.Row(i + 50), 24);
    float rot = simd::L2Sqr(ra.data(), rb.data(), 24);
    EXPECT_NEAR(rot, orig, 1e-3f * (1.0f + orig));
  }
}

TEST(OpqTest, OpqNotWorseThanPlainPqOnCorrelatedData) {
  // Strongly skewed (correlated after random rotation) data is where OPQ's
  // rotation balances sub-space energy; its reconstruction error should not
  // exceed plain PQ's by more than noise.
  data::Dataset ds = testing::SmallDataset(3000, 32, 1.5, 18);
  OpqOptions options = SmallOptions();

  OpqOptions pq_only = options;
  pq_only.num_iterations = 1;  // identity rotation + plain PQ training
  OpqModel pq_model = OpqModel::Train(ds.base.data(), ds.size(), 32, pq_only);
  OpqModel opq_model = OpqModel::Train(ds.base.data(), ds.size(), 32, options);

  double pq_err = pq_model.MeanReconstructionError(ds.base.data(), 500);
  double opq_err = opq_model.MeanReconstructionError(ds.base.data(), 500);
  EXPECT_LT(opq_err, pq_err * 1.05);
}

TEST(OpqTest, RotateBatchMatchesSingle) {
  data::Dataset ds = testing::SmallDataset(200, 16, 1.0, 19);
  OpqOptions options = SmallOptions();
  options.pq.num_subspaces = 2;
  OpqModel opq = OpqModel::Train(ds.base.data(), ds.size(), 16, options);
  linalg::Matrix batch = opq.RotateBatch(ds.base.data(), 20);
  std::vector<float> single(16);
  for (int64_t i = 0; i < 20; ++i) {
    opq.Rotate(ds.base.Row(i), single.data());
    for (int64_t j = 0; j < 16; ++j) {
      EXPECT_FLOAT_EQ(batch.At(i, j), single[j]);
    }
  }
}

TEST(OpqTest, RandomInitAlsoTrains) {
  data::Dataset ds = testing::SmallDataset(800, 16, 1.0, 20);
  OpqOptions options = SmallOptions();
  options.pq.num_subspaces = 2;
  options.random_init = true;
  OpqModel opq = OpqModel::Train(ds.base.data(), ds.size(), 16, options);
  EXPECT_TRUE(opq.trained());
  EXPECT_LT(linalg::OrthonormalityError(opq.rotation()), 1e-3);
}

}  // namespace
}  // namespace resinfer::quant

#include "quant/pq.h"

#include <cmath>

#include <gtest/gtest.h>

#include "simd/kernels.h"
#include "test_util.h"

namespace resinfer::quant {
namespace {

data::Dataset MakeData() { return testing::SmallDataset(2000, 32, 0.8, 15); }

PqOptions SmallOptions() {
  PqOptions options;
  options.num_subspaces = 4;
  options.nbits = 6;  // 64 centroids per subspace keeps training fast
  return options;
}

TEST(PqTest, TrainedShape) {
  data::Dataset ds = MakeData();
  PqCodebook pq = PqCodebook::Train(ds.base.data(), ds.size(), 32,
                                    SmallOptions());
  EXPECT_TRUE(pq.trained());
  EXPECT_EQ(pq.num_subspaces(), 4);
  EXPECT_EQ(pq.subspace_dim(), 8);
  EXPECT_EQ(pq.num_centroids(), 64);
  EXPECT_EQ(pq.code_size(), 4);
}

TEST(PqTest, DecodeIsNearestCentroidReconstruction) {
  data::Dataset ds = MakeData();
  PqCodebook pq = PqCodebook::Train(ds.base.data(), ds.size(), 32,
                                    SmallOptions());
  std::vector<uint8_t> code(pq.code_size());
  std::vector<float> decoded(32);
  const float* x = ds.base.Row(7);
  pq.Encode(x, code.data());
  pq.Decode(code.data(), decoded.data());
  // Reported reconstruction error matches the decode.
  float err = simd::L2Sqr(x, decoded.data(), 32);
  EXPECT_NEAR(pq.ReconstructionError(x), err, 1e-3f * (1.0f + err));
}

TEST(PqTest, AdcEqualsDistanceToReconstruction) {
  // ADC(q, code(x)) = sum_s ||q_s - c_s||^2 = ||q - decode(code)||^2.
  data::Dataset ds = MakeData();
  PqCodebook pq = PqCodebook::Train(ds.base.data(), ds.size(), 32,
                                    SmallOptions());
  std::vector<float> table(pq.adc_table_size());
  std::vector<uint8_t> code(pq.code_size());
  std::vector<float> decoded(32);
  for (int64_t q = 0; q < 5; ++q) {
    pq.ComputeAdcTable(ds.queries.Row(q), table.data());
    for (int64_t i = 0; i < 20; ++i) {
      pq.Encode(ds.base.Row(i), code.data());
      pq.Decode(code.data(), decoded.data());
      float adc = pq.AdcDistance(table.data(), code.data());
      float direct = simd::L2Sqr(ds.queries.Row(q), decoded.data(), 32);
      EXPECT_NEAR(adc, direct, 1e-2f * (1.0f + direct));
    }
  }
}

TEST(PqTest, AdcApproximatesTrueDistance) {
  data::Dataset ds = MakeData();
  PqCodebook pq = PqCodebook::Train(ds.base.data(), ds.size(), 32,
                                    SmallOptions());
  std::vector<float> table(pq.adc_table_size());
  std::vector<uint8_t> codes = pq.EncodeBatch(ds.base.data(), ds.size());

  double rel_err = 0.0;
  int count = 0;
  for (int64_t q = 0; q < 8; ++q) {
    pq.ComputeAdcTable(ds.queries.Row(q), table.data());
    for (int64_t i = 0; i < 100; ++i) {
      float exact = simd::L2Sqr(ds.queries.Row(q), ds.base.Row(i), 32);
      float adc = pq.AdcDistance(table.data(),
                                 codes.data() + i * pq.code_size());
      if (exact > 1e-3f) {
        rel_err += std::abs(adc - exact) / exact;
        ++count;
      }
    }
  }
  EXPECT_LT(rel_err / count, 0.25) << "mean ADC relative error too large";
}

TEST(PqTest, EncodeBatchMatchesSingle) {
  data::Dataset ds = MakeData();
  PqCodebook pq = PqCodebook::Train(ds.base.data(), ds.size(), 32,
                                    SmallOptions());
  std::vector<uint8_t> batch = pq.EncodeBatch(ds.base.data(), 50);
  std::vector<uint8_t> single(pq.code_size());
  for (int64_t i = 0; i < 50; ++i) {
    pq.Encode(ds.base.Row(i), single.data());
    for (int64_t s = 0; s < pq.code_size(); ++s) {
      EXPECT_EQ(batch[i * pq.code_size() + s], single[s]);
    }
  }
}

TEST(PqTest, LargestDivisorAtMost) {
  EXPECT_EQ(LargestDivisorAtMost(128, 32), 32);
  EXPECT_EQ(LargestDivisorAtMost(300, 75), 75);
  EXPECT_EQ(LargestDivisorAtMost(300, 74), 60);
  EXPECT_EQ(LargestDivisorAtMost(7, 3), 1);
  EXPECT_EQ(LargestDivisorAtMost(960, 240), 240);
  EXPECT_EQ(LargestDivisorAtMost(420, 105), 105);
}

TEST(PqTest, MoreBitsReduceReconstructionError) {
  data::Dataset ds = MakeData();
  PqOptions low = SmallOptions();
  low.nbits = 3;
  PqOptions high = SmallOptions();
  high.nbits = 7;
  PqCodebook pq_low = PqCodebook::Train(ds.base.data(), ds.size(), 32, low);
  PqCodebook pq_high = PqCodebook::Train(ds.base.data(), ds.size(), 32, high);
  double err_low = 0.0, err_high = 0.0;
  for (int64_t i = 0; i < 200; ++i) {
    err_low += pq_low.ReconstructionError(ds.base.Row(i));
    err_high += pq_high.ReconstructionError(ds.base.Row(i));
  }
  EXPECT_LT(err_high, err_low);
}

}  // namespace
}  // namespace resinfer::quant

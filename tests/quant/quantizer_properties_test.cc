// Cross-quantizer distributional properties: how reconstruction error
// responds to the code budget, and the sign of the ADC bias. These pin the
// behaviours the §V corrector relies on (the trust feature only works if
// reconstruction error actually tracks estimate quality).
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "quant/pq.h"
#include "quant/rq.h"
#include "quant/sq.h"
#include "simd/kernels.h"
#include "test_util.h"

namespace resinfer::quant {
namespace {

data::Dataset MakeData() { return testing::SmallDataset(1200, 32, 0.9, 55); }

double MeanPqError(const data::Dataset& ds, int nbits, int subspaces) {
  PqOptions options;
  options.num_subspaces = subspaces;
  options.nbits = nbits;
  PqCodebook pq =
      PqCodebook::Train(ds.base.data(), ds.size(), ds.dim(), options);
  double total = 0.0;
  for (int64_t i = 0; i < 300; ++i) {
    total += pq.ReconstructionError(ds.base.Row(i));
  }
  return total / 300.0;
}

double MeanRqError(const data::Dataset& ds, int nbits, int stages) {
  RqOptions options;
  options.num_stages = stages;
  options.nbits = nbits;
  RqCodebook rq =
      RqCodebook::Train(ds.base.data(), ds.size(), ds.dim(), options);
  double total = 0.0;
  for (int64_t i = 0; i < 300; ++i) {
    total += rq.ReconstructionError(ds.base.Row(i));
  }
  return total / 300.0;
}

TEST(QuantizerPropertiesTest, PqErrorShrinksWithNbits) {
  data::Dataset ds = MakeData();
  double previous = std::numeric_limits<double>::infinity();
  for (int nbits : {3, 5, 7}) {
    const double error = MeanPqError(ds, nbits, 4);
    EXPECT_LT(error, previous * 1.02) << "nbits=" << nbits;
    previous = error;
  }
}

TEST(QuantizerPropertiesTest, PqErrorShrinksWithMoreSubspaces) {
  // Doubling the sub-space count doubles the code budget; the finer
  // partition must reconstruct at least as well.
  data::Dataset ds = MakeData();
  const double coarse = MeanPqError(ds, 5, 2);
  const double medium = MeanPqError(ds, 5, 4);
  const double fine = MeanPqError(ds, 5, 8);
  EXPECT_LT(medium, coarse * 1.02);
  EXPECT_LT(fine, medium * 1.02);
}

TEST(QuantizerPropertiesTest, RqErrorShrinksWithNbits) {
  data::Dataset ds = MakeData();
  double previous = std::numeric_limits<double>::infinity();
  for (int nbits : {3, 5, 7}) {
    const double error = MeanRqError(ds, nbits, 3);
    EXPECT_LT(error, previous * 1.02) << "nbits=" << nbits;
    previous = error;
  }
}

// ADC error obeys the exact geometric bound
//     |adc - exact| = |<e, e + 2(x - q)>| <= ||e||^2 + 2 ||e|| ||x - q||
// with e = x̂ - x. Every (query, point) pair must satisfy it — a per-pair
// invariant tying together Encode, Decode, the lookup tables and the stored
// norms of both quantizer families.
class AdcErrorBoundTest : public ::testing::TestWithParam<const char*> {};

TEST_P(AdcErrorBoundTest, PerPairErrorWithinGeometricBound) {
  data::Dataset ds = MakeData();
  const int64_t d = ds.dim();
  const bool is_pq = std::string(GetParam()) == "pq";

  PqOptions pq_options;
  pq_options.num_subspaces = 4;
  pq_options.nbits = 5;
  PqCodebook pq;
  RqOptions rq_options;
  rq_options.num_stages = 3;
  rq_options.nbits = 5;
  RqCodebook rq;
  if (is_pq) {
    pq = PqCodebook::Train(ds.base.data(), ds.size(), d, pq_options);
  } else {
    rq = RqCodebook::Train(ds.base.data(), ds.size(), d, rq_options);
  }

  std::vector<float> table(
      is_pq ? pq.adc_table_size() : rq.ip_table_size());
  std::vector<uint8_t> code(is_pq ? pq.code_size() : rq.code_size());
  std::vector<float> recon(static_cast<std::size_t>(d));
  for (int64_t q = 0; q < 10; ++q) {
    const float* query = ds.queries.Row(q);
    float qnorm = 0.0f;
    if (is_pq) {
      pq.ComputeAdcTable(query, table.data());
    } else {
      rq.ComputeIpTable(query, table.data());
      qnorm = simd::Norm2Sqr(query, static_cast<std::size_t>(d));
    }
    for (int64_t i = 0; i < 300; i += 3) {
      const float* x = ds.base.Row(i);
      float adc;
      if (is_pq) {
        pq.Encode(x, code.data());
        pq.Decode(code.data(), recon.data());
        adc = pq.AdcDistance(table.data(), code.data());
      } else {
        rq.Encode(x, code.data());
        rq.Decode(code.data(), recon.data());
        adc = rq.AdcDistance(table.data(), qnorm, code.data(),
                             rq.ReconstructionNormSqr(code.data()));
      }
      const float exact =
          simd::L2Sqr(query, x, static_cast<std::size_t>(d));
      const float err_sqr =
          simd::L2Sqr(x, recon.data(), static_cast<std::size_t>(d));
      const double bound = err_sqr + 2.0 * std::sqrt(err_sqr) *
                                         std::sqrt(exact);
      EXPECT_LE(std::abs(adc - exact), bound * 1.01 + 1e-2)
          << GetParam() << " pair (" << q << ", " << i << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Quantizers, AdcErrorBoundTest,
                         ::testing::Values("pq", "rq"),
                         [](const ::testing::TestParamInfo<const char*>& i) {
                           return std::string(i.param);
                         });

TEST(QuantizerPropertiesTest, ReconstructionErrorTracksAdcError) {
  // The §V-B trust feature: points with larger reconstruction error must
  // show larger average |ADC - exact| error. Compare the top and bottom
  // quartiles by reconstruction error.
  data::Dataset ds = MakeData();
  const int64_t d = ds.dim();
  RqOptions options;
  options.num_stages = 2;
  options.nbits = 4;  // deliberately coarse so errors spread out
  RqCodebook rq = RqCodebook::Train(ds.base.data(), ds.size(), d, options);

  const int64_t n = 400;
  std::vector<float> norms;
  std::vector<uint8_t> codes = rq.EncodeBatch(ds.base.data(), n, &norms);
  std::vector<float> recon_errors(static_cast<std::size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    recon_errors[static_cast<std::size_t>(i)] =
        rq.ReconstructionError(ds.base.Row(i));
  }
  std::vector<float> sorted = recon_errors;
  std::nth_element(sorted.begin(), sorted.begin() + n / 4, sorted.end());
  const float q1 = sorted[static_cast<std::size_t>(n / 4)];
  std::nth_element(sorted.begin(), sorted.begin() + 3 * n / 4, sorted.end());
  const float q3 = sorted[static_cast<std::size_t>(3 * n / 4)];

  double low_error_sum = 0.0, high_error_sum = 0.0;
  int low_count = 0, high_count = 0;
  std::vector<float> table(rq.ip_table_size());
  for (int64_t q = 0; q < 10; ++q) {
    rq.ComputeIpTable(ds.queries.Row(q), table.data());
    const float qnorm = simd::Norm2Sqr(ds.queries.Row(q),
                                       static_cast<std::size_t>(d));
    for (int64_t i = 0; i < n; ++i) {
      const float re = recon_errors[static_cast<std::size_t>(i)];
      if (re > q1 && re < q3) continue;  // keep only the extreme quartiles
      const float adc =
          rq.AdcDistance(table.data(), qnorm, codes.data() + i * rq.code_size(),
                         norms[static_cast<std::size_t>(i)]);
      const float exact = simd::L2Sqr(ds.queries.Row(q), ds.base.Row(i),
                                      static_cast<std::size_t>(d));
      if (re <= q1) {
        low_error_sum += std::abs(adc - exact);
        ++low_count;
      } else {
        high_error_sum += std::abs(adc - exact);
        ++high_count;
      }
    }
  }
  ASSERT_GT(low_count, 0);
  ASSERT_GT(high_count, 0);
  EXPECT_LT(low_error_sum / low_count, high_error_sum / high_count);
}

}  // namespace
}  // namespace resinfer::quant

#include "quant/rq.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "quant/kmeans.h"
#include "simd/kernels.h"
#include "test_util.h"

namespace resinfer::quant {
namespace {

data::Dataset MakeData() { return testing::SmallDataset(1500, 24, 0.8, 21); }

RqOptions SmallOptions(int stages = 3) {
  RqOptions options;
  options.num_stages = stages;
  options.nbits = 6;  // 64 centroids per stage keeps training fast
  return options;
}

TEST(RqTest, TrainedShape) {
  data::Dataset ds = MakeData();
  RqCodebook rq =
      RqCodebook::Train(ds.base.data(), ds.size(), 24, SmallOptions());
  EXPECT_TRUE(rq.trained());
  EXPECT_EQ(rq.dim(), 24);
  EXPECT_EQ(rq.num_stages(), 3);
  EXPECT_EQ(rq.num_centroids(), 64);
  EXPECT_EQ(rq.code_size(), 3);
  for (int s = 0; s < rq.num_stages(); ++s) {
    EXPECT_EQ(rq.centroids(s).rows(), 64);
    EXPECT_EQ(rq.centroids(s).cols(), 24);
  }
}

TEST(RqTest, DecodeSumsStageCentroids) {
  data::Dataset ds = MakeData();
  RqCodebook rq =
      RqCodebook::Train(ds.base.data(), ds.size(), 24, SmallOptions());
  std::vector<uint8_t> code(rq.code_size());
  rq.Encode(ds.base.Row(3), code.data());
  std::vector<float> decoded(24);
  rq.Decode(code.data(), decoded.data());
  for (int64_t j = 0; j < 24; ++j) {
    float expected = 0.0f;
    for (int s = 0; s < rq.num_stages(); ++s) {
      expected += rq.centroids(s).At(code[static_cast<std::size_t>(s)], j);
    }
    EXPECT_NEAR(decoded[static_cast<std::size_t>(j)], expected, 1e-5f);
  }
}

TEST(RqTest, ReconstructionErrorNonIncreasingInStages) {
  // More residual stages can only shrink the encoding error: the greedy
  // encoder may always pick the centroid nearest to the remaining residual,
  // and stage s trains on exactly those residuals.
  data::Dataset ds = MakeData();
  double previous = std::numeric_limits<double>::infinity();
  for (int stages : {1, 2, 4}) {
    RqCodebook rq = RqCodebook::Train(ds.base.data(), ds.size(), 24,
                                      SmallOptions(stages));
    double total = 0.0;
    for (int64_t i = 0; i < 200; ++i) {
      total += rq.ReconstructionError(ds.base.Row(i));
    }
    EXPECT_LT(total, previous * 1.05);  // tolerate k-means noise
    previous = total;
  }
}

TEST(RqTest, SingleStageMatchesPlainKMeansQuantizer) {
  // A 1-stage RQ is exactly a k-means vector quantizer.
  data::Dataset ds = MakeData();
  RqOptions options = SmallOptions(1);
  RqCodebook rq = RqCodebook::Train(ds.base.data(), ds.size(), 24, options);
  std::vector<uint8_t> code(1);
  for (int64_t i = 0; i < 50; ++i) {
    rq.Encode(ds.base.Row(i), code.data());
    const int32_t nearest = NearestCentroid(rq.centroids(0), ds.base.Row(i));
    EXPECT_EQ(code[0], static_cast<uint8_t>(nearest));
  }
}

TEST(RqTest, AdcEqualsDistanceToReconstruction) {
  // ||q||^2 - 2<q,x̂> + ||x̂||^2 must equal ||q - x̂||^2 exactly (up to
  // floating-point noise).
  data::Dataset ds = MakeData();
  RqCodebook rq =
      RqCodebook::Train(ds.base.data(), ds.size(), 24, SmallOptions());
  std::vector<float> table(rq.ip_table_size());
  std::vector<uint8_t> code(rq.code_size());
  std::vector<float> decoded(24);
  for (int64_t q = 0; q < 5; ++q) {
    const float* query = ds.queries.Row(q);
    rq.ComputeIpTable(query, table.data());
    const float qnorm = simd::Norm2Sqr(query, 24);
    for (int64_t i = 0; i < 20; ++i) {
      rq.Encode(ds.base.Row(i), code.data());
      rq.Decode(code.data(), decoded.data());
      const float norm = rq.ReconstructionNormSqr(code.data());
      const float adc = rq.AdcDistance(table.data(), qnorm, code.data(), norm);
      const float direct = simd::L2Sqr(query, decoded.data(), 24);
      EXPECT_NEAR(adc, direct, 1e-2f * (1.0f + direct));
    }
  }
}

TEST(RqTest, AdcApproximatesTrueDistance) {
  data::Dataset ds = MakeData();
  RqCodebook rq =
      RqCodebook::Train(ds.base.data(), ds.size(), 24, SmallOptions(4));
  std::vector<float> table(rq.ip_table_size());
  std::vector<float> norms;
  std::vector<uint8_t> codes = rq.EncodeBatch(ds.base.data(), 300, &norms);
  double total_rel_err = 0.0;
  int count = 0;
  for (int64_t q = 0; q < 8; ++q) {
    const float* query = ds.queries.Row(q);
    rq.ComputeIpTable(query, table.data());
    const float qnorm = simd::Norm2Sqr(query, 24);
    for (int64_t i = 0; i < 300; i += 10) {
      const float adc = rq.AdcDistance(table.data(), qnorm,
                                       codes.data() + i * rq.code_size(),
                                       norms[static_cast<std::size_t>(i)]);
      const float exact = simd::L2Sqr(query, ds.base.Row(i), 24);
      total_rel_err += std::abs(adc - exact) / (1.0f + exact);
      ++count;
    }
  }
  // A 4x64 codebook on a 24-d clustered set should land well within 30%
  // average relative error.
  EXPECT_LT(total_rel_err / count, 0.3);
}

TEST(RqTest, EncodeBatchMatchesSingleEncode) {
  data::Dataset ds = MakeData();
  RqCodebook rq =
      RqCodebook::Train(ds.base.data(), ds.size(), 24, SmallOptions());
  std::vector<float> norms;
  std::vector<uint8_t> codes = rq.EncodeBatch(ds.base.data(), 64, &norms);
  ASSERT_EQ(norms.size(), 64u);
  std::vector<uint8_t> single(rq.code_size());
  for (int64_t i = 0; i < 64; ++i) {
    rq.Encode(ds.base.Row(i), single.data());
    for (int64_t s = 0; s < rq.code_size(); ++s) {
      EXPECT_EQ(codes[static_cast<std::size_t>(i * rq.code_size() + s)],
                single[static_cast<std::size_t>(s)]);
    }
    EXPECT_NEAR(norms[static_cast<std::size_t>(i)],
                rq.ReconstructionNormSqr(single.data()),
                1e-3f * (1.0f + norms[static_cast<std::size_t>(i)]));
  }
}

TEST(RqTest, DeterministicGivenSeed) {
  data::Dataset ds = MakeData();
  RqCodebook a =
      RqCodebook::Train(ds.base.data(), ds.size(), 24, SmallOptions());
  RqCodebook b =
      RqCodebook::Train(ds.base.data(), ds.size(), 24, SmallOptions());
  for (int s = 0; s < a.num_stages(); ++s) {
    EXPECT_EQ(linalg::MaxAbsDifference(a.centroids(s), b.centroids(s)), 0.0);
  }
}

TEST(RqTest, FromCodebooksRoundTrip) {
  data::Dataset ds = MakeData();
  RqCodebook rq =
      RqCodebook::Train(ds.base.data(), ds.size(), 24, SmallOptions());
  std::vector<linalg::Matrix> tables;
  for (int s = 0; s < rq.num_stages(); ++s) {
    tables.push_back(rq.centroids(s).Clone());
  }
  RqCodebook rebuilt = RqCodebook::FromCodebooks(std::move(tables));
  EXPECT_EQ(rebuilt.dim(), rq.dim());
  EXPECT_EQ(rebuilt.num_stages(), rq.num_stages());
  std::vector<uint8_t> c1(rq.code_size());
  std::vector<uint8_t> c2(rq.code_size());
  for (int64_t i = 0; i < 32; ++i) {
    rq.Encode(ds.base.Row(i), c1.data());
    rebuilt.Encode(ds.base.Row(i), c2.data());
    EXPECT_EQ(c1, c2);
  }
}

TEST(RqTest, TinyTrainingSetClampsCentroids) {
  // n < 2^nbits: the trainer must clamp the per-stage codebook size
  // instead of aborting inside k-means.
  linalg::Matrix tiny = testing::RandomMatrix(10, 8, 33);
  RqOptions options;
  options.num_stages = 2;
  options.nbits = 8;
  RqCodebook rq = RqCodebook::Train(tiny.data(), 10, 8, options);
  EXPECT_TRUE(rq.trained());
  EXPECT_LE(rq.num_centroids(), 10);
  std::vector<uint8_t> code(rq.code_size());
  rq.Encode(tiny.Row(0), code.data());  // must not crash
}

}  // namespace
}  // namespace resinfer::quant

#include "quant/sq.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "simd/kernels.h"
#include "test_util.h"

namespace resinfer::quant {
namespace {

data::Dataset MakeData() { return testing::SmallDataset(1000, 16, 0.6, 29); }

TEST(SqTest, TrainedShape) {
  data::Dataset ds = MakeData();
  SqCodebook sq = SqCodebook::Train(ds.base.data(), ds.size(), 16);
  EXPECT_TRUE(sq.trained());
  EXPECT_EQ(sq.dim(), 16);
  EXPECT_EQ(sq.code_size(), 16);
  EXPECT_EQ(sq.vmin().size(), 16u);
  EXPECT_EQ(sq.step().size(), 16u);
}

TEST(SqTest, RangeCoversTrainingData) {
  data::Dataset ds = MakeData();
  SqCodebook sq = SqCodebook::Train(ds.base.data(), ds.size(), 16);
  for (int64_t j = 0; j < 16; ++j) {
    float lo = std::numeric_limits<float>::infinity();
    float hi = -lo;
    for (int64_t i = 0; i < ds.size(); ++i) {
      lo = std::min(lo, ds.base.At(i, j));
      hi = std::max(hi, ds.base.At(i, j));
    }
    const auto sj = static_cast<std::size_t>(j);
    EXPECT_LE(sq.vmin()[sj], lo + 1e-6f);
    EXPECT_GE(sq.vmin()[sj] + 255.0f * sq.step()[sj], hi - 1e-6f);
  }
}

TEST(SqTest, ReconstructionErrorBoundedByHalfStep) {
  // Per-dimension error of round() quantization is at most step/2 for
  // in-range values, so the squared L2 error is bounded by sum (step/2)^2.
  data::Dataset ds = MakeData();
  SqCodebook sq = SqCodebook::Train(ds.base.data(), ds.size(), 16);
  float bound = 0.0f;
  for (float s : sq.step()) bound += 0.25f * s * s;
  for (int64_t i = 0; i < 100; ++i) {
    EXPECT_LE(sq.ReconstructionError(ds.base.Row(i)), bound * 1.001f + 1e-6f);
  }
}

TEST(SqTest, AdcEqualsDistanceToReconstruction) {
  data::Dataset ds = MakeData();
  SqCodebook sq = SqCodebook::Train(ds.base.data(), ds.size(), 16);
  std::vector<uint8_t> code(static_cast<std::size_t>(sq.code_size()));
  std::vector<float> decoded(16);
  for (int64_t q = 0; q < 5; ++q) {
    const float* query = ds.queries.Row(q);
    for (int64_t i = 0; i < 25; ++i) {
      sq.Encode(ds.base.Row(i), code.data());
      sq.Decode(code.data(), decoded.data());
      const float adc = sq.AdcDistance(query, code.data());
      const float direct = simd::L2Sqr(query, decoded.data(), 16);
      EXPECT_NEAR(adc, direct, 1e-3f * (1.0f + direct));
    }
  }
}

TEST(SqTest, AdcApproximatesTrueDistanceClosely) {
  // SQ8 is a fine-grained quantizer; relative ADC error should be tiny.
  data::Dataset ds = MakeData();
  SqCodebook sq = SqCodebook::Train(ds.base.data(), ds.size(), 16);
  std::vector<uint8_t> codes = sq.EncodeBatch(ds.base.data(), 200);
  for (int64_t q = 0; q < 5; ++q) {
    const float* query = ds.queries.Row(q);
    for (int64_t i = 0; i < 200; i += 20) {
      const float adc = sq.AdcDistance(query, codes.data() + i * 16);
      const float exact = simd::L2Sqr(query, ds.base.Row(i), 16);
      EXPECT_NEAR(adc, exact, 0.05f * (1.0f + exact));
    }
  }
}

TEST(SqTest, OutOfRangeValuesClampInsteadOfWrapping) {
  std::vector<float> vmin = {0.0f, 0.0f};
  std::vector<float> step = {1.0f / 255.0f, 1.0f / 255.0f};
  SqCodebook sq = SqCodebook::FromParams(vmin, step);
  const float far[2] = {-10.0f, 10.0f};
  uint8_t code[2];
  sq.Encode(far, code);
  EXPECT_EQ(code[0], 0);
  EXPECT_EQ(code[1], 255);
}

TEST(SqTest, ConstantDimensionReconstructsExactly) {
  // A dimension with zero spread must decode back to its constant value
  // (step 0) rather than dividing by zero.
  linalg::Matrix m(50, 3);
  for (int64_t i = 0; i < 50; ++i) {
    m.At(i, 0) = 4.5f;                             // constant
    m.At(i, 1) = static_cast<float>(i) * 0.1f;     // varying
    m.At(i, 2) = -1.0f + static_cast<float>(i % 2);
  }
  SqCodebook sq = SqCodebook::Train(m.data(), 50, 3);
  std::vector<uint8_t> code(3);
  std::vector<float> decoded(3);
  sq.Encode(m.Row(7), code.data());
  sq.Decode(code.data(), decoded.data());
  EXPECT_FLOAT_EQ(decoded[0], 4.5f);
}

TEST(SqTest, TrimQuantileShrinksRange) {
  // With one far outlier, the trimmed range must be much tighter than the
  // raw min/max range.
  linalg::Matrix m = testing::RandomMatrix(500, 4, 91);
  m.At(0, 0) = 1000.0f;  // inject outlier
  SqOptions raw;
  SqOptions trimmed;
  trimmed.trim_quantile = 0.01;
  SqCodebook sq_raw = SqCodebook::Train(m.data(), 500, 4, raw);
  SqCodebook sq_trim = SqCodebook::Train(m.data(), 500, 4, trimmed);
  EXPECT_LT(sq_trim.step()[0], sq_raw.step()[0] * 0.1f);
}

TEST(SqTest, EncodeBatchMatchesSingleEncode) {
  data::Dataset ds = MakeData();
  SqCodebook sq = SqCodebook::Train(ds.base.data(), ds.size(), 16);
  std::vector<uint8_t> codes = sq.EncodeBatch(ds.base.data(), 40);
  std::vector<uint8_t> single(16);
  for (int64_t i = 0; i < 40; ++i) {
    sq.Encode(ds.base.Row(i), single.data());
    for (int64_t j = 0; j < 16; ++j) {
      EXPECT_EQ(codes[static_cast<std::size_t>(i * 16 + j)],
                single[static_cast<std::size_t>(j)]);
    }
  }
}

TEST(SqTest, FromParamsRoundTrip) {
  data::Dataset ds = MakeData();
  SqCodebook sq = SqCodebook::Train(ds.base.data(), ds.size(), 16);
  SqCodebook rebuilt = SqCodebook::FromParams(sq.vmin(), sq.step());
  std::vector<uint8_t> c1(16);
  std::vector<uint8_t> c2(16);
  for (int64_t i = 0; i < 20; ++i) {
    sq.Encode(ds.base.Row(i), c1.data());
    rebuilt.Encode(ds.base.Row(i), c2.data());
    EXPECT_EQ(c1, c2);
  }
}

// Reconstruction quality must degrade gracefully as the trim quantile
// grows: tighter ranges clamp more points but keep in-range precision.
class SqTrimSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(SqTrimSweepTest, InRangePointsStayAccurate) {
  data::Dataset ds = MakeData();
  SqOptions options;
  options.trim_quantile = GetParam();
  SqCodebook sq = SqCodebook::Train(ds.base.data(), ds.size(), 16, options);
  // The half-step bound applies exactly to points whose every component
  // lies inside the trained range (clamped components add their own error).
  float bound = 0.0f;
  for (float s : sq.step()) bound += 0.25f * s * s;
  int in_range = 0;
  for (int64_t i = 0; i < ds.size(); ++i) {
    bool inside = true;
    for (int64_t j = 0; j < 16 && inside; ++j) {
      const auto sj = static_cast<std::size_t>(j);
      const float hi = sq.vmin()[sj] + 255.0f * sq.step()[sj];
      inside = ds.base.At(i, j) >= sq.vmin()[sj] && ds.base.At(i, j) <= hi;
    }
    if (!inside) continue;
    ++in_range;
    EXPECT_LE(sq.ReconstructionError(ds.base.Row(i)),
              bound * 1.001f + 1e-6f);
  }
  // Even at the heaviest trim level some points are fully in-range
  // ((1-2q)^16 of the mass in expectation).
  EXPECT_GT(in_range, 0);
}

INSTANTIATE_TEST_SUITE_P(TrimLevels, SqTrimSweepTest,
                         ::testing::Values(0.0, 0.001, 0.01, 0.05));

}  // namespace
}  // namespace resinfer::quant

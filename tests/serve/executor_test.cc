// Work-stealing executor conformance: every task runs exactly once no
// matter which queue it entered through, imbalance is corrected by
// stealing, task-spawned tasks are always drained, and shutdown is clean
// with work still queued. The CI TSan job runs this suite — the scheduling
// assertions double as race detectors.
#include "serve/executor.h"

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/parallel.h"

namespace resinfer::serve {
namespace {

TEST(ServeExecutorTest, ExecutesEverySubmittedTaskExactlyOnce) {
  Executor::Options options;
  options.num_threads = 3;
  Executor executor(options);
  constexpr int kTasks = 200;
  std::vector<std::atomic<int>> ran(kTasks);
  WaitGroup wait;
  wait.Add(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    executor.Submit([&, i](int worker) {
      EXPECT_GE(worker, 0);
      EXPECT_LT(worker, 3);
      ran[i].fetch_add(1);
      wait.Done();
    });
  }
  wait.Wait();
  for (int i = 0; i < kTasks; ++i) EXPECT_EQ(ran[i].load(), 1) << i;
  executor.Shutdown();
  Executor::Stats stats = executor.stats();
  EXPECT_EQ(stats.executed, kTasks);
  EXPECT_EQ(stats.admitted, kTasks);  // all entered via the shared queue
  ASSERT_EQ(stats.busy_seconds.size(), 3u);
}

TEST(ServeExecutorTest, SubmitToPreDistributesAcrossDeques) {
  Executor::Options options;
  options.num_threads = 2;
  Executor executor(options);
  constexpr int kTasks = 100;
  std::atomic<int> ran{0};
  WaitGroup wait;
  wait.Add(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    executor.SubmitTo(i % 2, [&](int) {
      ran.fetch_add(1);
      wait.Done();
    });
  }
  wait.Wait();
  EXPECT_EQ(ran.load(), kTasks);
}

TEST(ServeExecutorTest, IdleWorkerStealsFromSkewedDeque) {
  // Every task lands on worker 0's deque and each costs ~1ms, so the
  // backlog stays non-empty for tens of milliseconds no matter how
  // submission interleaves with execution (this box may have one core).
  // Worker 1's own deque never receives work: any progress it makes is a
  // steal, and the slow victim guarantees it gets the chance.
  Executor::Options options;
  options.num_threads = 2;
  Executor executor(options);
  constexpr int kTasks = 64;
  std::atomic<int> ran_on_other{0};
  WaitGroup wait;
  wait.Add(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    executor.SubmitTo(0, [&](int worker) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      if (worker != 0) ran_on_other.fetch_add(1);
      wait.Done();
    });
  }
  wait.Wait();
  executor.Shutdown();
  EXPECT_GT(ran_on_other.load(), 0);
  EXPECT_GT(executor.stats().stolen, 0);
  EXPECT_EQ(executor.stats().executed, kTasks);
}

TEST(ServeExecutorTest, TaskSpawnedTasksAreDrainedByShutdown) {
  Executor::Options options;
  options.num_threads = 2;
  Executor executor(options);
  std::atomic<int> ran{0};
  for (int i = 0; i < 8; ++i) {
    executor.Submit([&](int) {
      ran.fetch_add(1);
      // Follow-up work submitted from inside a task must also run, even
      // if Shutdown has already begun by the time it is enqueued.
      executor.Submit([&](int) { ran.fetch_add(1); });
    });
  }
  executor.Shutdown();
  EXPECT_EQ(ran.load(), 16);
}

TEST(ServeExecutorTest, ShutdownDrainsQueuedBacklog) {
  Executor::Options options;
  options.num_threads = 2;
  Executor executor(options);
  std::atomic<int> ran{0};
  for (int i = 0; i < 500; ++i) {
    executor.Submit([&](int) { ran.fetch_add(1); });
  }
  executor.Shutdown();  // must not return before the backlog is served
  EXPECT_EQ(ran.load(), 500);
  EXPECT_EQ(executor.stats().executed, 500);
}

TEST(ServeExecutorTest, ShutdownIsIdempotent) {
  Executor executor(Executor::Options{2});
  std::atomic<int> ran{0};
  executor.Submit([&](int) { ran.fetch_add(1); });
  executor.Shutdown();
  executor.Shutdown();
  EXPECT_EQ(ran.load(), 1);
}

TEST(ServeExecutorTest, DefaultsToResolvedThreadCount) {
  SetDefaultThreadCount(2);
  Executor executor;
  EXPECT_EQ(executor.num_threads(), 2);
  SetDefaultThreadCount(0);
}

TEST(ServeExecutorTest, BusyTimeAccumulatesWhereWorkRan) {
  Executor::Options options;
  options.num_threads = 2;
  Executor executor(options);
  WaitGroup wait;
  wait.Add(1);
  executor.Submit([&](int) {
    std::this_thread::sleep_for(std::chrono::milliseconds(15));
    wait.Done();
  });
  wait.Wait();
  executor.Shutdown();
  double total_busy = 0.0;
  for (double b : executor.stats().busy_seconds) total_busy += b;
  EXPECT_GE(total_busy, 0.010);
}

TEST(ServeExecutorTest, WaitGroupIsReusable) {
  WaitGroup wait;
  wait.Add(2);
  std::thread a([&] { wait.Done(); });
  std::thread b([&] { wait.Done(); });
  wait.Wait();
  a.join();
  b.join();
  wait.Add(1);
  std::thread c([&] { wait.Done(); });
  wait.Wait();
  c.join();
}

}  // namespace
}  // namespace resinfer::serve

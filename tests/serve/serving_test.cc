// Coalescing admission conformance. The load-bearing guarantee is
// bit-identity: every query submitted through IvfServer — in any arrival
// order, from any number of client threads, coalesced into whatever groups
// traffic produced — must resolve to exactly the neighbors a solo
// Search(query, k, nprobe) returns (ids and distances). On top of that,
// the flush triggers (full group, linger expiry, drain) and the occupancy
// accounting are pinned. The CI TSan job runs this suite.
#include "serve/admission.h"

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <future>
#include <memory>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/ddc_any.h"
#include "core/training_data.h"
#include "index/ivf_index.h"
#include "persist/persist.h"
#include "storage/storage.h"
#include "test_util.h"
#include "util/rng.h"

namespace resinfer::serve {
namespace {

using index::DistanceComputer;
using index::Neighbor;

struct ServingFixture {
  data::Dataset ds = testing::SmallDataset(1500, 24, 1.0, 131, 40, 140);
  index::IvfIndex ivf;
  core::PqEstimatorData pq;
  core::LinearCorrector pq_corrector;

  ServingFixture() {
    index::IvfOptions options;
    options.num_clusters = 24;
    ivf = index::IvfIndex::Build(ds.base, options);

    quant::PqOptions pq_options;
    pq_options.num_subspaces = 8;
    pq_options.nbits = 6;
    pq = core::BuildPqEstimatorData(ds.base, pq_options);
    core::TrainingDataOptions training;
    training.max_queries = 60;
    core::PqAdcEstimator estimator(&pq);
    pq_corrector = core::TrainAnyCorrector(estimator, ds.base,
                                           ds.train_queries, training);
    // Code-resident scans for the estimator path, as a real server runs.
    ivf.AttachCodesFrom(*DdcPqFactory()());
  }

  index::ComputerFactory ExactFactory() {
    return [this] {
      return std::make_unique<index::FlatDistanceComputer>(
          ds.base.data(), ds.size(), ds.dim());
    };
  }
  index::ComputerFactory DdcPqFactory() {
    return [this] {
      return std::make_unique<core::DdcAnyComputer>(
          &ds.base, std::make_unique<core::PqAdcEstimator>(&pq),
          &pq_corrector);
    };
  }
};

ServingFixture& Fixture() {
  static ServingFixture* fixture = new ServingFixture();
  return *fixture;
}

void ExpectSameNeighbors(const std::vector<Neighbor>& want,
                         const std::vector<Neighbor>& got,
                         const std::string& label) {
  ASSERT_EQ(want.size(), got.size()) << label;
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(want[i].id, got[i].id) << label << " rank " << i;
    EXPECT_EQ(want[i].distance, got[i].distance) << label << " rank " << i;
  }
}

// Solo answers computed through a fresh computer — the reference every
// serving-path result must match bit-for-bit.
std::vector<std::vector<Neighbor>> SoloAnswers(
    ServingFixture& f, const index::ComputerFactory& factory, int k,
    int nprobe) {
  auto computer = factory();
  std::vector<std::vector<Neighbor>> want;
  for (int64_t q = 0; q < f.ds.queries.rows(); ++q) {
    want.push_back(f.ivf.Search(*computer, f.ds.queries.Row(q), k, nprobe));
  }
  return want;
}

TEST(ServingTest, CoalescedAnswersBitIdenticalInAnyArrivalOrder) {
  ServingFixture& f = Fixture();
  const int k = 10, nprobe = 6;
  struct Case {
    const char* name;
    index::ComputerFactory factory;
  };
  std::vector<Case> cases = {{"exact", f.ExactFactory()},
                             {"ddc-pq", f.DdcPqFactory()}};
  for (auto& c : cases) {
    const auto want = SoloAnswers(f, c.factory, k, nprobe);
    // A shuffled arrival order: coalescing must reassemble co-probing
    // queries without ever mixing up whose answer is whose.
    std::vector<int64_t> order(static_cast<std::size_t>(f.ds.queries.rows()));
    std::iota(order.begin(), order.end(), int64_t{0});
    Rng rng(977);
    for (std::size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1],
                order[static_cast<std::size_t>(rng.UniformInt(i))]);
    }
    AdmissionOptions options;
    options.num_threads = 2;
    options.max_group_size = 8;
    options.linger_micros = 500;
    IvfServer server(&f.ivf, c.factory, options);
    std::vector<std::future<std::vector<Neighbor>>> futures(order.size());
    for (int64_t q : order) {
      futures[static_cast<std::size_t>(q)] =
          server.Submit(f.ds.queries.Row(q), k, nprobe);
    }
    for (std::size_t q = 0; q < futures.size(); ++q) {
      ExpectSameNeighbors(want[q], futures[q].get(),
                          std::string(c.name) + " q=" + std::to_string(q));
    }
    server.Shutdown();
    ServingStats stats = server.stats();
    EXPECT_EQ(stats.requests, f.ds.queries.rows());
    EXPECT_EQ(stats.group_occupancy.sum(),
              static_cast<double>(f.ds.queries.rows()));
    EXPECT_EQ(stats.latency_seconds.count(), f.ds.queries.rows());
  }
}

TEST(ServingTest, ConcurrentClientsGetTheirOwnAnswers) {
  ServingFixture& f = Fixture();
  const int k = 5, nprobe = 4;
  const auto want = SoloAnswers(f, f.DdcPqFactory(), k, nprobe);
  AdmissionOptions options;
  options.num_threads = 2;
  options.max_group_size = 8;
  options.linger_micros = 300;
  IvfServer server(&f.ivf, f.DdcPqFactory(), options);
  const int64_t n = f.ds.queries.rows();
  std::vector<std::future<std::vector<Neighbor>>> futures(
      static_cast<std::size_t>(n));
  constexpr int kClients = 4;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int64_t q = c; q < n; q += kClients) {
        futures[static_cast<std::size_t>(q)] =
            server.Submit(f.ds.queries.Row(q), k, nprobe);
      }
    });
  }
  for (auto& t : clients) t.join();
  for (int64_t q = 0; q < n; ++q) {
    ExpectSameNeighbors(want[static_cast<std::size_t>(q)],
                        futures[static_cast<std::size_t>(q)].get(),
                        "client-interleaved q=" + std::to_string(q));
  }
}

TEST(ServingTest, LingerExpiryFlushesPartialGroups) {
  ServingFixture& f = Fixture();
  AdmissionOptions options;
  options.num_threads = 1;
  options.max_group_size = 32;  // never fills with 3 requests
  options.linger_micros = 2000;
  IvfServer server(&f.ivf, f.ExactFactory(), options);
  std::vector<std::future<std::vector<Neighbor>>> futures;
  for (int64_t q = 0; q < 3; ++q) {
    futures.push_back(server.Submit(f.ds.queries.Row(q), 5, 4));
  }
  // No Flush, no Shutdown: only the linger deadline can release these.
  for (auto& future : futures) {
    EXPECT_FALSE(future.get().empty());
  }
  ServingStats stats = server.stats();
  EXPECT_GE(stats.linger_flushes, 1);
  EXPECT_EQ(stats.full_flushes, 0);
  EXPECT_EQ(stats.group_occupancy.sum(), 3.0);
}

TEST(ServingTest, FullGroupDispatchesWithoutWaitingForLinger) {
  ServingFixture& f = Fixture();
  AdmissionOptions options;
  options.num_threads = 1;
  options.max_group_size = 4;
  options.linger_micros = 60'000'000;  // a minute: linger cannot be the cause
  IvfServer server(&f.ivf, f.ExactFactory(), options);
  // The same query four times shares one coalescing key by construction.
  std::vector<std::future<std::vector<Neighbor>>> futures;
  for (int i = 0; i < 4; ++i) {
    futures.push_back(server.Submit(f.ds.queries.Row(0), 5, 4));
  }
  auto reference = futures[0].get();
  for (int i = 1; i < 4; ++i) {
    ExpectSameNeighbors(reference, futures[i].get(),
                        "duplicate " + std::to_string(i));
  }
  ServingStats stats = server.stats();
  EXPECT_EQ(stats.full_flushes, 1);
  EXPECT_EQ(stats.groups, 1);
  EXPECT_DOUBLE_EQ(stats.MeanOccupancy(), 4.0);
}

TEST(ServingTest, ShutdownDrainsInFlightWork) {
  ServingFixture& f = Fixture();
  const int k = 5, nprobe = 4;
  const auto want = SoloAnswers(f, f.ExactFactory(), k, nprobe);
  AdmissionOptions options;
  options.num_threads = 2;
  options.max_group_size = 16;
  options.linger_micros = 60'000'000;  // only the drain can release these
  IvfServer server(&f.ivf, f.ExactFactory(), options);
  std::vector<std::future<std::vector<Neighbor>>> futures;
  for (int64_t q = 0; q < f.ds.queries.rows(); ++q) {
    futures.push_back(server.Submit(f.ds.queries.Row(q), k, nprobe));
  }
  server.Shutdown();  // must flush pending groups and wait for them
  for (std::size_t q = 0; q < futures.size(); ++q) {
    ASSERT_EQ(futures[q].wait_for(std::chrono::seconds(0)),
              std::future_status::ready)
        << "q=" << q;
    ExpectSameNeighbors(want[q], futures[q].get(),
                        "drain q=" + std::to_string(q));
  }
  ServingStats stats = server.stats();
  EXPECT_GE(stats.drain_flushes, 1);
  EXPECT_EQ(stats.latency_seconds.count(), f.ds.queries.rows());
}

TEST(ServingTest, DifferentParametersNeverShareAGroup) {
  ServingFixture& f = Fixture();
  AdmissionOptions options;
  options.num_threads = 1;
  options.max_group_size = 32;
  options.linger_micros = 1000;
  IvfServer server(&f.ivf, f.ExactFactory(), options);
  // Same query, three parameter sets: the answers must match the solo
  // search for each (k, nprobe), which a mixed group could not produce.
  auto fa = server.Submit(f.ds.queries.Row(0), 3, 2);
  auto fb = server.Submit(f.ds.queries.Row(0), 7, 4);
  auto fc = server.Submit(f.ds.queries.Row(0), 7, 8);
  auto computer = f.ExactFactory()();
  ExpectSameNeighbors(f.ivf.Search(*computer, f.ds.queries.Row(0), 3, 2),
                      fa.get(), "k=3 nprobe=2");
  ExpectSameNeighbors(f.ivf.Search(*computer, f.ds.queries.Row(0), 7, 4),
                      fb.get(), "k=7 nprobe=4");
  ExpectSameNeighbors(f.ivf.Search(*computer, f.ds.queries.Row(0), 7, 8),
                      fc.get(), "k=7 nprobe=8");
  server.Shutdown();
  EXPECT_EQ(server.stats().groups, 3);
}

TEST(ServingTest, NonPositiveKResolvesEmptyImmediately) {
  ServingFixture& f = Fixture();
  AdmissionOptions options;
  options.num_threads = 1;
  IvfServer server(&f.ivf, f.ExactFactory(), options);
  auto future = server.Submit(f.ds.queries.Row(0), 0, 4);
  EXPECT_TRUE(future.get().empty());
  EXPECT_EQ(server.stats().groups, 0);
  EXPECT_EQ(server.stats().requests, 1);
}

TEST(ServingTest, CoalescingOffServesEveryRequestSolo) {
  ServingFixture& f = Fixture();
  const int k = 5, nprobe = 4;
  const auto want = SoloAnswers(f, f.DdcPqFactory(), k, nprobe);
  AdmissionOptions options;
  options.num_threads = 2;
  options.coalesce = false;
  IvfServer server(&f.ivf, f.DdcPqFactory(), options);
  std::vector<std::future<std::vector<Neighbor>>> futures;
  for (int64_t q = 0; q < f.ds.queries.rows(); ++q) {
    futures.push_back(server.Submit(f.ds.queries.Row(q), k, nprobe));
  }
  for (std::size_t q = 0; q < futures.size(); ++q) {
    ExpectSameNeighbors(want[q], futures[q].get(),
                        "solo q=" + std::to_string(q));
  }
  server.Shutdown();
  ServingStats stats = server.stats();
  EXPECT_EQ(stats.groups, f.ds.queries.rows());
  EXPECT_DOUBLE_EQ(stats.MeanOccupancy(), 1.0);
}

TEST(ServingTest, BackloggedTrafficCoalesces) {
  // With one worker and a burst of co-probing traffic, groups must form
  // (occupancy > 1): this is the property the serving bench quantifies.
  ServingFixture& f = Fixture();
  AdmissionOptions options;
  options.num_threads = 1;
  options.max_group_size = 8;
  options.linger_micros = 5000;
  IvfServer server(&f.ivf, f.ExactFactory(), options);
  std::vector<std::future<std::vector<Neighbor>>> futures;
  constexpr int kRepeats = 16;  // same query => same key, a full backlog
  for (int i = 0; i < kRepeats; ++i) {
    futures.push_back(server.Submit(f.ds.queries.Row(1), 5, 4));
  }
  for (auto& future : futures) future.get();
  server.Shutdown();
  EXPECT_GE(server.stats().MeanOccupancy(), 2.0);
}

TEST(ServingTest, MmapLoadedIndexServesBitIdenticalAnswers) {
  // End-to-end storage tier check: save the fixture index (persist v6),
  // reload it zero-copy through the mmap backend, and serve coalesced
  // traffic from the mapped records. Every answer must be bit-identical to
  // the in-memory index's solo search — the serving layer pins the storage
  // handle per dispatched group, so the mapping cannot be unmapped under an
  // in-flight scan. The CI matrix also runs this whole suite with
  // RESINFER_STORAGE=mmap, covering the env-default route.
  ServingFixture& f = Fixture();
  const int k = 10, nprobe = 6;
  const auto want = SoloAnswers(f, f.DdcPqFactory(), k, nprobe);

  const auto dir = std::filesystem::temp_directory_path() /
                   "resinfer_serving_mmap_test";
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "ivf_v6.bin").string();
  util::Status saved = persist::SaveIvf(path, f.ivf);
  ASSERT_TRUE(saved.ok()) << saved.ToString();

  persist::IvfLoadOptions load_options;
  load_options.backend = storage::StorageBackend::kMmap;
  index::IvfIndex mapped;
  util::Status loaded = persist::LoadIvf(path, &mapped, load_options);
  ASSERT_TRUE(loaded.ok()) << loaded.ToString();
  ASSERT_TRUE(mapped.has_codes());
  ASSERT_EQ(mapped.codes().storage_backend(),
            storage::StorageBackend::kMmap);

  AdmissionOptions options;
  options.num_threads = 2;
  options.max_group_size = 8;
  options.linger_micros = 500;
  IvfServer server(&mapped, f.DdcPqFactory(), options);
  std::vector<std::future<std::vector<Neighbor>>> futures;
  for (int64_t q = 0; q < f.ds.queries.rows(); ++q) {
    futures.push_back(server.Submit(f.ds.queries.Row(q), k, nprobe));
  }
  for (std::size_t q = 0; q < futures.size(); ++q) {
    ExpectSameNeighbors(want[q], futures[q].get(),
                        "mmap q=" + std::to_string(q));
  }
  server.Shutdown();
  EXPECT_EQ(server.stats().requests, f.ds.queries.rows());
  std::filesystem::remove_all(dir);
}

TEST(ServingTest, StatsSnapshotsAreCoherentDuringTraffic) {
  // Regression for a lock-discipline hole the thread-safety annotations
  // surfaced: stats() used to sweep the live per-worker computers with no
  // lock, racing every in-flight scan (the old header even admitted the
  // result was "only coherent when no search is in flight"). Stats are now
  // folded per dispatched group under stats_mu_, so a reader hammering
  // stats() during traffic must see race-free (TSan-clean under the CI
  // TSan job, which runs this suite) and monotonically growing counters.
  ServingFixture& f = Fixture();
  AdmissionOptions options;
  options.num_threads = 4;
  options.max_group_size = 8;
  options.linger_micros = 50;
  IvfServer server(&f.ivf, f.DdcPqFactory(), options);
  constexpr int k = 10;
  constexpr int nprobe = 6;

  std::atomic<bool> stop{false};
  std::thread reader([&] {
    index::ComputerStats last;
    while (!stop.load(std::memory_order_acquire)) {
      const ServingStats snapshot = server.stats();
      // Whole-group folding: every counter only ever grows, and the
      // internal relations hold at every instant — a torn read of a live
      // computer would violate both.
      EXPECT_GE(snapshot.computer_stats.candidates, last.candidates);
      EXPECT_GE(snapshot.computer_stats.pruned, last.pruned);
      EXPECT_GE(snapshot.computer_stats.dims_scanned, last.dims_scanned);
      EXPECT_GE(snapshot.computer_stats.candidates,
                snapshot.computer_stats.pruned);
      last = snapshot.computer_stats;
    }
  });

  constexpr int kClients = 3;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      std::vector<std::future<std::vector<Neighbor>>> futures;
      for (int64_t q = 0; q < f.ds.queries.rows(); ++q) {
        futures.push_back(server.Submit(f.ds.queries.Row(q), k, nprobe));
      }
      for (auto& future : futures) future.get();
    });
  }
  for (auto& client : clients) client.join();
  stop.store(true, std::memory_order_release);
  reader.join();
  server.Shutdown();

  const ServingStats final_stats = server.stats();
  EXPECT_EQ(final_stats.requests, kClients * f.ds.queries.rows());
  // Every request's scan work is folded in by shutdown.
  EXPECT_GE(final_stats.computer_stats.candidates, final_stats.requests);
}

}  // namespace
}  // namespace resinfer::serve

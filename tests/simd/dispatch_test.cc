// The dispatch table pointer is the single source of truth for both
// ActiveLevel() and the kernel implementations. These tests pin that
// contract: a reader can never observe a level that disagrees with the
// kernels it would dispatch to (the old design kept level and table in two
// separate atomics, so a reader between the two stores could see a
// mismatched pair).
#include "simd/dispatch.h"

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "simd/kernels.h"

namespace resinfer::simd {
namespace {

TEST(DispatchConsistencyTest, SetIsImmediatelyVisibleToActiveLevel) {
  const SimdLevel best = BestSupportedLevel();
  SetActiveLevel(SimdLevel::kScalar);
  EXPECT_EQ(ActiveLevel(), SimdLevel::kScalar);
  SetActiveLevel(best);
  EXPECT_EQ(ActiveLevel(), best);
}

TEST(DispatchConsistencyTest, LevelAndKernelsStayCoherentUnderConcurrentFlips) {
  // Writers flip between scalar and the best level while readers
  // repeatedly read the level and drive a kernel through the dispatcher.
  // Every observed level must be one of the two values ever stored —
  // derived from the same table pointer the kernel call used — and the
  // kernel result must stay correct throughout. (Run under TSAN this also
  // guards the atomicity of the single-slot design.)
  const SimdLevel best = BestSupportedLevel();
  std::atomic<bool> stop{false};
  std::atomic<int> bad_levels{0};
  std::atomic<int> bad_values{0};

  std::vector<std::thread> threads;
  for (int w = 0; w < 2; ++w) {
    threads.emplace_back([&stop, best] {
      bool scalar = true;
      while (!stop.load(std::memory_order_relaxed)) {
        SetActiveLevel(scalar ? SimdLevel::kScalar : best);
        scalar = !scalar;
      }
    });
  }
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&stop, &bad_levels, &bad_values, best] {
      const float a[8] = {1, 2, 3, 4, 5, 6, 7, 8};
      const float b[8] = {0, 2, 3, 4, 5, 6, 7, 9};
      while (!stop.load(std::memory_order_relaxed)) {
        const SimdLevel level = ActiveLevel();
        if (level != SimdLevel::kScalar && level != best) {
          bad_levels.fetch_add(1, std::memory_order_relaxed);
        }
        const float d = L2Sqr(a, b, 8);  // (1-0)^2 + (8-9)^2 = 2
        if (d != 2.0f) bad_values.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : threads) t.join();
  SetActiveLevel(best);

  EXPECT_EQ(bad_levels.load(), 0);
  EXPECT_EQ(bad_values.load(), 0);
}

}  // namespace
}  // namespace resinfer::simd

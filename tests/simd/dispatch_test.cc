// The dispatch table pointer is the single source of truth for both
// ActiveLevel() and the kernel implementations. These tests pin that
// contract: a reader can never observe a level that disagrees with the
// kernels it would dispatch to (the old design kept level and table in two
// separate atomics, so a reader between the two stores could see a
// mismatched pair).
#include "simd/dispatch.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "simd/kernels.h"

namespace resinfer::simd {
namespace {

TEST(DispatchConsistencyTest, SetIsImmediatelyVisibleToActiveLevel) {
  const SimdLevel best = BestSupportedLevel();
  SetActiveLevel(SimdLevel::kScalar);
  EXPECT_EQ(ActiveLevel(), SimdLevel::kScalar);
  SetActiveLevel(best);
  EXPECT_EQ(ActiveLevel(), best);
}

TEST(DispatchConsistencyTest, SupportedLevelsIsAscendingPrefixOfLattice) {
  const auto levels = SupportedLevels();
  ASSERT_FALSE(levels.empty());
  EXPECT_EQ(levels.front(), SimdLevel::kScalar);
  EXPECT_EQ(levels.back(), BestSupportedLevel());
  for (std::size_t i = 1; i < levels.size(); ++i) {
    EXPECT_LT(levels[i - 1], levels[i]);
  }
  // Every advertised level must actually be settable and observable.
  for (SimdLevel level : levels) {
    SetActiveLevel(level);
    EXPECT_EQ(ActiveLevel(), level) << SimdLevelName(level);
  }
  SetActiveLevel(BestSupportedLevel());
}

TEST(DispatchConsistencyTest, ThreeLevelLatticeClampsDown) {
  // Requesting any level above the host's best must clamp to best, never
  // reject and never exceed; requesting at-or-below must be honored exactly.
  const SimdLevel best = BestSupportedLevel();
  for (SimdLevel requested :
       {SimdLevel::kScalar, SimdLevel::kAvx2, SimdLevel::kAvx512}) {
    SetActiveLevel(requested);
    const SimdLevel expected = requested > best ? best : requested;
    EXPECT_EQ(ActiveLevel(), expected) << SimdLevelName(requested);
  }
  SetActiveLevel(best);
}

TEST(DispatchConsistencyTest, ParseSimdLevelNameCoversAllLevels) {
  SimdLevel level = SimdLevel::kAvx2;
  ASSERT_TRUE(ParseSimdLevelName("scalar", &level));
  EXPECT_EQ(level, SimdLevel::kScalar);
  ASSERT_TRUE(ParseSimdLevelName("avx2", &level));
  EXPECT_EQ(level, SimdLevel::kAvx2);
  ASSERT_TRUE(ParseSimdLevelName("avx512", &level));
  EXPECT_EQ(level, SimdLevel::kAvx512);
  // Round trip through the display name.
  for (SimdLevel l :
       {SimdLevel::kScalar, SimdLevel::kAvx2, SimdLevel::kAvx512}) {
    SimdLevel parsed = SimdLevel::kScalar;
    ASSERT_TRUE(ParseSimdLevelName(SimdLevelName(l), &parsed));
    EXPECT_EQ(parsed, l);
  }
  EXPECT_FALSE(ParseSimdLevelName("", &level));
  EXPECT_FALSE(ParseSimdLevelName("AVX2", &level));
  EXPECT_FALSE(ParseSimdLevelName("avx-512", &level));
  EXPECT_FALSE(ParseSimdLevelName("sse4", &level));
  EXPECT_FALSE(ParseSimdLevelName(nullptr, &level));
}

TEST(DispatchConsistencyTest, EnvOverrideSelectsInitialLevel) {
  // InitialLevel() resolves RESINFER_SIMD_LEVEL against the host's best:
  // valid names clamp down, garbage falls back to best (with a stderr
  // note), unset means best. The table slot itself was initialized long
  // before this test, so drive the resolver directly.
  const SimdLevel best = BestSupportedLevel();
  const char* saved = std::getenv("RESINFER_SIMD_LEVEL");
  std::string saved_copy = saved ? saved : "";

  ::unsetenv("RESINFER_SIMD_LEVEL");
  EXPECT_EQ(InitialLevel(), best);

  ::setenv("RESINFER_SIMD_LEVEL", "scalar", 1);
  EXPECT_EQ(InitialLevel(), SimdLevel::kScalar);

  ::setenv("RESINFER_SIMD_LEVEL", "avx2", 1);
  EXPECT_EQ(InitialLevel(),
            best >= SimdLevel::kAvx2 ? SimdLevel::kAvx2 : best);

  ::setenv("RESINFER_SIMD_LEVEL", "avx512", 1);
  EXPECT_EQ(InitialLevel(),
            best >= SimdLevel::kAvx512 ? SimdLevel::kAvx512 : best);

  ::setenv("RESINFER_SIMD_LEVEL", "turbo9000", 1);
  EXPECT_EQ(InitialLevel(), best);

  if (saved) {
    ::setenv("RESINFER_SIMD_LEVEL", saved_copy.c_str(), 1);
  } else {
    ::unsetenv("RESINFER_SIMD_LEVEL");
  }
}

TEST(DispatchConsistencyTest, LevelAndKernelsStayCoherentUnderConcurrentFlips) {
  // Writers cycle through every supported level while readers
  // repeatedly read the level and drive a kernel through the dispatcher.
  // Every observed level must be one of the two values ever stored —
  // derived from the same table pointer the kernel call used — and the
  // kernel result must stay correct throughout. (Run under TSAN this also
  // guards the atomicity of the single-slot design.)
  const SimdLevel best = BestSupportedLevel();
  const std::vector<SimdLevel> supported = SupportedLevels();
  std::atomic<bool> stop{false};
  std::atomic<int> bad_levels{0};
  std::atomic<int> bad_values{0};

  std::vector<std::thread> threads;
  for (int w = 0; w < 2; ++w) {
    // Writers cycle through the whole supported lattice (on AVX-512 hosts
    // that is scalar -> avx2 -> avx512), not just the two endpoints.
    threads.emplace_back([&stop, &supported] {
      std::size_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        SetActiveLevel(supported[i % supported.size()]);
        ++i;
      }
    });
  }
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&stop, &bad_levels, &bad_values, &supported] {
      const float a[8] = {1, 2, 3, 4, 5, 6, 7, 8};
      const float b[8] = {0, 2, 3, 4, 5, 6, 7, 9};
      while (!stop.load(std::memory_order_relaxed)) {
        const SimdLevel level = ActiveLevel();
        bool known = false;
        for (SimdLevel s : supported) known |= (level == s);
        if (!known) bad_levels.fetch_add(1, std::memory_order_relaxed);
        const float d = L2Sqr(a, b, 8);  // (1-0)^2 + (8-9)^2 = 2
        if (d != 2.0f) bad_values.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : threads) t.join();
  SetActiveLevel(best);

  EXPECT_EQ(bad_levels.load(), 0);
  EXPECT_EQ(bad_values.load(), 0);
}

}  // namespace
}  // namespace resinfer::simd

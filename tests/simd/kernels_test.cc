#include "simd/kernels.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "simd/dispatch.h"
#include "util/rng.h"

namespace resinfer::simd {
namespace {

std::vector<float> RandomVec(std::size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.Gaussian());
  return v;
}

// Property sweep: scalar and AVX2 agree across dimensions including
// non-multiples of the vector width.
class KernelParityTest : public ::testing::TestWithParam<int> {};

TEST_P(KernelParityTest, L2SqrMatchesScalar) {
  const std::size_t n = GetParam();
  auto a = RandomVec(n, 1), b = RandomVec(n, 2);
  float scalar = internal::L2SqrScalar(a.data(), b.data(), n);
#if defined(RESINFER_HAVE_AVX2)
  float avx = internal::L2SqrAvx2(a.data(), b.data(), n);
  EXPECT_NEAR(avx, scalar, 1e-4f * (1.0f + scalar));
#endif
  ScopedSimdLevel guard(SimdLevel::kScalar);
  EXPECT_EQ(L2Sqr(a.data(), b.data(), n), scalar);
}

TEST_P(KernelParityTest, InnerProductMatchesScalar) {
  const std::size_t n = GetParam();
  auto a = RandomVec(n, 3), b = RandomVec(n, 4);
  float scalar = internal::InnerProductScalar(a.data(), b.data(), n);
#if defined(RESINFER_HAVE_AVX2)
  float avx = internal::InnerProductAvx2(a.data(), b.data(), n);
  EXPECT_NEAR(avx, scalar, 1e-4f * (1.0f + std::abs(scalar)));
#endif
}

TEST_P(KernelParityTest, AxpyMatchesScalar) {
  const std::size_t n = GetParam();
  auto x = RandomVec(n, 5);
  auto out1 = RandomVec(n, 6);
  auto out2 = out1;
  internal::AxpyScalar(0.75f, x.data(), out1.data(), n);
#if defined(RESINFER_HAVE_AVX2)
  internal::AxpyAvx2(0.75f, x.data(), out2.data(), n);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(out1[i], out2[i], 1e-5f);
#endif
}

TEST_P(KernelParityTest, SqAdcL2SqrMatchesScalar) {
  const std::size_t n = GetParam();
  auto q = RandomVec(n, 7);
  auto vmin = RandomVec(n, 8);
  std::vector<float> step(n);
  std::vector<uint8_t> code(n);
  Rng rng(9);
  for (std::size_t i = 0; i < n; ++i) {
    step[i] = static_cast<float>(rng.Uniform()) * 0.01f;
    code[i] = static_cast<uint8_t>(rng.Uniform() * 255.0);
  }
  float scalar = internal::SqAdcL2SqrScalar(q.data(), code.data(),
                                            vmin.data(), step.data(), n);
  // The kernel must equal decoding into a buffer and taking plain L2.
  std::vector<float> decoded(n);
  for (std::size_t i = 0; i < n; ++i) {
    decoded[i] = vmin[i] + static_cast<float>(code[i]) * step[i];
  }
  float reference = internal::L2SqrScalar(q.data(), decoded.data(), n);
  EXPECT_NEAR(scalar, reference, 1e-4f * (1.0f + reference));
#if defined(RESINFER_HAVE_AVX2)
  float avx = internal::SqAdcL2SqrAvx2(q.data(), code.data(), vmin.data(),
                                       step.data(), n);
  EXPECT_NEAR(avx, scalar, 1e-4f * (1.0f + scalar));
#endif
  ScopedSimdLevel guard(SimdLevel::kScalar);
  EXPECT_EQ(
      SqAdcL2Sqr(q.data(), code.data(), vmin.data(), step.data(), n),
      scalar);
}

INSTANTIATE_TEST_SUITE_P(Dims, KernelParityTest,
                         ::testing::Values(1, 2, 3, 7, 8, 15, 16, 17, 31, 32,
                                           33, 48, 100, 128, 256, 300, 960));

TEST(KernelsTest, KnownValues) {
  const float a[4] = {1, 2, 3, 4};
  const float b[4] = {0, 2, 5, 1};
  // (1-0)^2 + 0 + (3-5)^2 + (4-1)^2 = 1 + 4 + 9 = 14
  EXPECT_FLOAT_EQ(internal::L2SqrScalar(a, b, 4), 14.0f);
  // 0 + 4 + 15 + 4 = 23
  EXPECT_FLOAT_EQ(internal::InnerProductScalar(a, b, 4), 23.0f);
  EXPECT_FLOAT_EQ(internal::Norm2SqrScalar(a, 4), 30.0f);
}

TEST(KernelsTest, ZeroLength) {
  const float a[1] = {1.0f};
  EXPECT_EQ(L2Sqr(a, a, 0), 0.0f);
  EXPECT_EQ(InnerProduct(a, a, 0), 0.0f);
  EXPECT_EQ(Norm2Sqr(a, 0), 0.0f);
}

TEST(KernelsTest, L2SqrIdenticalVectorsIsZero) {
  auto a = RandomVec(301, 7);
  EXPECT_EQ(L2Sqr(a.data(), a.data(), a.size()), 0.0f);
}

TEST(DispatchTest, LevelSwitching) {
  SimdLevel best = BestSupportedLevel();
  EXPECT_EQ(ActiveLevel(), best);
  {
    ScopedSimdLevel guard(SimdLevel::kScalar);
    EXPECT_EQ(ActiveLevel(), SimdLevel::kScalar);
  }
  EXPECT_EQ(ActiveLevel(), best);
  EXPECT_STREQ(SimdLevelName(SimdLevel::kScalar), "scalar");
  EXPECT_STREQ(SimdLevelName(SimdLevel::kAvx2), "avx2");
}

TEST(DispatchTest, UnsupportedLevelClampsDown) {
  SetActiveLevel(SimdLevel::kAvx2);
  EXPECT_LE(ActiveLevel(), BestSupportedLevel());
  SetActiveLevel(BestSupportedLevel());
}

}  // namespace
}  // namespace resinfer::simd

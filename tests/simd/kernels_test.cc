#include "simd/kernels.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "simd/dispatch.h"
#include "util/rng.h"

namespace resinfer::simd {
namespace {

std::vector<float> RandomVec(std::size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.Gaussian());
  return v;
}

#if defined(RESINFER_HAVE_AVX512)
// The AVX-512 TU is compiled whenever the compiler supports the flags, but
// calling internal::*Avx512 directly would fault on hardware without the
// F+BW+VL sets — gate every direct call on cpuid.
bool HasAvx512() {
  return BestSupportedLevel() >= SimdLevel::kAvx512;
}
#endif

// Property sweep: scalar and AVX2 agree across dimensions including
// non-multiples of the vector width.
class KernelParityTest : public ::testing::TestWithParam<int> {};

TEST_P(KernelParityTest, L2SqrMatchesScalar) {
  const std::size_t n = GetParam();
  auto a = RandomVec(n, 1), b = RandomVec(n, 2);
  float scalar = internal::L2SqrScalar(a.data(), b.data(), n);
#if defined(RESINFER_HAVE_AVX2)
  float avx = internal::L2SqrAvx2(a.data(), b.data(), n);
  EXPECT_NEAR(avx, scalar, 1e-4f * (1.0f + scalar));
#endif
#if defined(RESINFER_HAVE_AVX512)
  if (HasAvx512()) {
    float avx512 = internal::L2SqrAvx512(a.data(), b.data(), n);
    EXPECT_NEAR(avx512, scalar, 1e-4f * (1.0f + scalar));
  }
#endif
  ScopedSimdLevel guard(SimdLevel::kScalar);
  EXPECT_EQ(L2Sqr(a.data(), b.data(), n), scalar);
}

TEST_P(KernelParityTest, InnerProductMatchesScalar) {
  const std::size_t n = GetParam();
  auto a = RandomVec(n, 3), b = RandomVec(n, 4);
  float scalar = internal::InnerProductScalar(a.data(), b.data(), n);
#if defined(RESINFER_HAVE_AVX2)
  float avx = internal::InnerProductAvx2(a.data(), b.data(), n);
  EXPECT_NEAR(avx, scalar, 1e-4f * (1.0f + std::abs(scalar)));
#endif
#if defined(RESINFER_HAVE_AVX512)
  if (HasAvx512()) {
    float avx512 = internal::InnerProductAvx512(a.data(), b.data(), n);
    EXPECT_NEAR(avx512, scalar, 1e-4f * (1.0f + std::abs(scalar)));
    EXPECT_EQ(internal::Norm2SqrAvx512(a.data(), n),
              internal::InnerProductAvx512(a.data(), a.data(), n));
  }
#endif
}

TEST_P(KernelParityTest, AxpyMatchesScalar) {
  const std::size_t n = GetParam();
  auto x = RandomVec(n, 5);
  auto out1 = RandomVec(n, 6);
  auto out2 = out1;
  internal::AxpyScalar(0.75f, x.data(), out1.data(), n);
#if defined(RESINFER_HAVE_AVX2)
  internal::AxpyAvx2(0.75f, x.data(), out2.data(), n);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(out1[i], out2[i], 1e-5f);
#endif
#if defined(RESINFER_HAVE_AVX512)
  if (HasAvx512()) {
    auto out3 = RandomVec(n, 6);
    internal::AxpyAvx512(0.75f, x.data(), out3.data(), n);
    // axpy is one fmadd per element at every level — bit-identical.
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(out1[i], out3[i], 1e-5f);
  }
#endif
}

TEST_P(KernelParityTest, SqAdcL2SqrMatchesScalar) {
  const std::size_t n = GetParam();
  auto q = RandomVec(n, 7);
  auto vmin = RandomVec(n, 8);
  std::vector<float> step(n);
  std::vector<uint8_t> code(n);
  Rng rng(9);
  for (std::size_t i = 0; i < n; ++i) {
    step[i] = static_cast<float>(rng.Uniform()) * 0.01f;
    code[i] = static_cast<uint8_t>(rng.Uniform() * 255.0);
  }
  float scalar = internal::SqAdcL2SqrScalar(q.data(), code.data(),
                                            vmin.data(), step.data(), n);
  // The kernel must equal decoding into a buffer and taking plain L2.
  std::vector<float> decoded(n);
  for (std::size_t i = 0; i < n; ++i) {
    decoded[i] = vmin[i] + static_cast<float>(code[i]) * step[i];
  }
  float reference = internal::L2SqrScalar(q.data(), decoded.data(), n);
  EXPECT_NEAR(scalar, reference, 1e-4f * (1.0f + reference));
#if defined(RESINFER_HAVE_AVX2)
  float avx = internal::SqAdcL2SqrAvx2(q.data(), code.data(), vmin.data(),
                                       step.data(), n);
  EXPECT_NEAR(avx, scalar, 1e-4f * (1.0f + scalar));
#endif
#if defined(RESINFER_HAVE_AVX512)
  if (HasAvx512()) {
    float avx512 = internal::SqAdcL2SqrAvx512(q.data(), code.data(),
                                              vmin.data(), step.data(), n);
    EXPECT_NEAR(avx512, scalar, 1e-4f * (1.0f + scalar));
  }
#endif
  ScopedSimdLevel guard(SimdLevel::kScalar);
  EXPECT_EQ(
      SqAdcL2Sqr(q.data(), code.data(), vmin.data(), step.data(), n),
      scalar);
}

INSTANTIATE_TEST_SUITE_P(Dims, KernelParityTest,
                         ::testing::Values(1, 2, 3, 7, 8, 15, 16, 17, 31, 32,
                                           33, 48, 100, 128, 256, 300, 960));

// Batched kernels: every lane must be BIT-identical to the single-pair
// kernel at the same level (the EstimateBatch contract builds on this).
TEST_P(KernelParityTest, L2SqrBatch4LanesMatchSingle) {
  const std::size_t n = GetParam();
  auto q = RandomVec(n, 21);
  std::vector<std::vector<float>> row_storage;
  const float* rows[4];
  for (int r = 0; r < 4; ++r) row_storage.push_back(RandomVec(n, 22 + r));
  for (int r = 0; r < 4; ++r) rows[r] = row_storage[r].data();

  float out[4];
  internal::L2SqrBatch4Scalar(q.data(), rows, n, out);
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(out[r], internal::L2SqrScalar(rows[r], q.data(), n)) << r;
  }
#if defined(RESINFER_HAVE_AVX2)
  internal::L2SqrBatch4Avx2(q.data(), rows, n, out);
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(out[r], internal::L2SqrAvx2(rows[r], q.data(), n)) << r;
  }
#endif
#if defined(RESINFER_HAVE_AVX512)
  if (HasAvx512()) {
    internal::L2SqrBatch4Avx512(q.data(), rows, n, out);
    for (int r = 0; r < 4; ++r) {
      EXPECT_EQ(out[r], internal::L2SqrAvx512(rows[r], q.data(), n)) << r;
    }
  }
#endif
}

TEST_P(KernelParityTest, InnerProductBatch4LanesMatchSingle) {
  const std::size_t n = GetParam();
  auto q = RandomVec(n, 41);
  std::vector<std::vector<float>> row_storage;
  const float* rows[4];
  for (int r = 0; r < 4; ++r) row_storage.push_back(RandomVec(n, 42 + r));
  for (int r = 0; r < 4; ++r) rows[r] = row_storage[r].data();

  float out[4];
  internal::InnerProductBatch4Scalar(q.data(), rows, n, out);
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(out[r], internal::InnerProductScalar(rows[r], q.data(), n))
        << r;
  }
#if defined(RESINFER_HAVE_AVX2)
  internal::InnerProductBatch4Avx2(q.data(), rows, n, out);
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(out[r], internal::InnerProductAvx2(rows[r], q.data(), n)) << r;
  }
#endif
#if defined(RESINFER_HAVE_AVX512)
  if (HasAvx512()) {
    internal::InnerProductBatch4Avx512(q.data(), rows, n, out);
    for (int r = 0; r < 4; ++r) {
      EXPECT_EQ(out[r], internal::InnerProductAvx512(rows[r], q.data(), n))
          << r;
    }
  }
#endif
}

TEST_P(KernelParityTest, SqAdcL2SqrBatch4LanesMatchSingle) {
  const std::size_t n = GetParam();
  auto q = RandomVec(n, 31), vmin = RandomVec(n, 32);
  std::vector<float> step(n);
  std::vector<std::vector<uint8_t>> code_storage(4,
                                                 std::vector<uint8_t>(n));
  Rng rng(33);
  for (std::size_t i = 0; i < n; ++i) {
    step[i] = static_cast<float>(rng.Uniform()) * 0.01f;
    for (int r = 0; r < 4; ++r) {
      code_storage[r][i] = static_cast<uint8_t>(rng.Uniform() * 255.0);
    }
  }
  const uint8_t* codes[4];
  for (int r = 0; r < 4; ++r) codes[r] = code_storage[r].data();

  float out[4];
  internal::SqAdcL2SqrBatch4Scalar(q.data(), codes, vmin.data(), step.data(),
                                   n, out);
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(out[r], internal::SqAdcL2SqrScalar(q.data(), codes[r],
                                                 vmin.data(), step.data(), n))
        << r;
  }
#if defined(RESINFER_HAVE_AVX2)
  internal::SqAdcL2SqrBatch4Avx2(q.data(), codes, vmin.data(), step.data(),
                                 n, out);
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(out[r], internal::SqAdcL2SqrAvx2(q.data(), codes[r],
                                               vmin.data(), step.data(), n))
        << r;
  }
#endif
#if defined(RESINFER_HAVE_AVX512)
  if (HasAvx512()) {
    internal::SqAdcL2SqrBatch4Avx512(q.data(), codes, vmin.data(),
                                     step.data(), n, out);
    for (int r = 0; r < 4; ++r) {
      EXPECT_EQ(out[r],
                internal::SqAdcL2SqrAvx512(q.data(), codes[r], vmin.data(),
                                           step.data(), n))
          << r;
    }
  }
#endif
}

TEST(KernelsTest, PqAdcBatchMatchesSequentialLookupSum) {
  // Table accumulation over a block of codes, including the remainder path
  // (count not a multiple of the gather width). m sweeps the sub-space
  // column paths: 8 (narrow transpose), 19 (16-wide segment + bytewise
  // tail), 32 (full 16-wide segments).
  const int ksub = 64;
  Rng rng(42);
  for (int m : {8, 19, 32}) {
    auto table = RandomVec(static_cast<std::size_t>(m) * ksub, 41 + m);
    for (int count : {1, 3, 7, 8, 9, 16, 23}) {
      std::vector<std::vector<uint8_t>> code_storage(
          count, std::vector<uint8_t>(m));
      std::vector<const uint8_t*> codes(count);
      for (int c = 0; c < count; ++c) {
        for (int s = 0; s < m; ++s) {
          code_storage[c][s] =
              static_cast<uint8_t>(rng.Uniform() * (ksub - 1));
        }
        codes[c] = code_storage[c].data();
      }
      std::vector<float> want(count);
      for (int c = 0; c < count; ++c) {
        float acc = 0.f;
        for (int s = 0; s < m; ++s) acc += table[s * ksub + codes[c][s]];
        want[c] = acc;
      }
      std::vector<float> got(count);
      internal::PqAdcBatchScalar(table.data(), m, ksub, codes.data(), count,
                                 got.data());
      for (int c = 0; c < count; ++c) {
        EXPECT_EQ(got[c], want[c]) << m << " " << count;
      }
#if defined(RESINFER_HAVE_AVX2)
      internal::PqAdcBatchAvx2(table.data(), m, ksub, codes.data(), count,
                               got.data());
      for (int c = 0; c < count; ++c) {
        EXPECT_EQ(got[c], want[c]) << m << " " << count;
      }
#endif
#if defined(RESINFER_HAVE_AVX512)
      if (HasAvx512()) {
        internal::PqAdcBatchAvx512(table.data(), m, ksub, codes.data(),
                                   count, got.data());
        for (int c = 0; c < count; ++c) {
          EXPECT_EQ(got[c], want[c]) << m << " " << count;
        }
      }
#endif
    }
  }
}

TEST(KernelsTest, L2SqrTileLanesMatchBatch4PerQuery) {
  // Lane (g, r) of the query tile must be bit-identical to the
  // corresponding L2SqrBatch4 lane for query g, at every level.
  const std::size_t n = 77;  // exercises 16-wide, 8-wide, and scalar tails
  std::vector<std::vector<float>> query_storage, row_storage;
  const float* queries[6];
  const float* rows[4];
  for (int g = 0; g < 6; ++g) {
    query_storage.push_back(RandomVec(n, 60 + g));
  }
  for (int g = 0; g < 6; ++g) queries[g] = query_storage[g].data();
  for (int r = 0; r < 4; ++r) row_storage.push_back(RandomVec(n, 70 + r));
  for (int r = 0; r < 4; ++r) rows[r] = row_storage[r].data();

  for (int nq : {1, 2, 5, 6}) {
    float tile[6 * 4];
    float want[4];
    internal::L2SqrTileScalar(queries, nq, rows, n, tile);
    for (int g = 0; g < nq; ++g) {
      internal::L2SqrBatch4Scalar(queries[g], rows, n, want);
      for (int r = 0; r < 4; ++r) {
        EXPECT_EQ(tile[g * 4 + r], want[r]) << "scalar g=" << g << " r=" << r;
      }
    }
#if defined(RESINFER_HAVE_AVX2)
    internal::L2SqrTileAvx2(queries, nq, rows, n, tile);
    for (int g = 0; g < nq; ++g) {
      internal::L2SqrBatch4Avx2(queries[g], rows, n, want);
      for (int r = 0; r < 4; ++r) {
        EXPECT_EQ(tile[g * 4 + r], want[r]) << "avx2 g=" << g << " r=" << r;
      }
    }
#endif
#if defined(RESINFER_HAVE_AVX512)
    if (HasAvx512()) {
      internal::L2SqrTileAvx512(queries, nq, rows, n, tile);
      for (int g = 0; g < nq; ++g) {
        internal::L2SqrBatch4Avx512(queries[g], rows, n, want);
        for (int r = 0; r < 4; ++r) {
          EXPECT_EQ(tile[g * 4 + r], want[r])
              << "avx512 g=" << g << " r=" << r;
        }
      }
    }
#endif
  }
}

TEST(KernelsTest, PqAdcTileLanesMatchBatchPerTable) {
  // Lane (g, c) of the table tile must be bit-identical to
  // PqAdcBatch(tables[g], ...)[c], including the non-multiple-of-8
  // remainder and table-group remainders (nq not a multiple of 4). m = 32
  // additionally covers the 16-wide sub-space column segments.
  const int ksub = 64;
  Rng rng(90);
  for (int m : {8, 32}) {
  std::vector<std::vector<float>> table_storage;
  const float* tables[7];
  for (int g = 0; g < 7; ++g) {
    table_storage.push_back(
        RandomVec(static_cast<std::size_t>(m) * ksub, 80 + g));
  }
  for (int g = 0; g < 7; ++g) tables[g] = table_storage[g].data();

  for (int count : {1, 5, 8, 16, 19}) {
    std::vector<std::vector<uint8_t>> code_storage(
        count, std::vector<uint8_t>(m));
    std::vector<const uint8_t*> codes(count);
    for (int c = 0; c < count; ++c) {
      for (int s = 0; s < m; ++s) {
        code_storage[c][s] =
            static_cast<uint8_t>(rng.Uniform() * (ksub - 1));
      }
      codes[c] = code_storage[c].data();
    }
    for (int nq : {1, 3, 4, 7}) {
      std::vector<float> tile(static_cast<std::size_t>(nq) * count);
      std::vector<float> want(count);
      internal::PqAdcTileScalar(tables, nq, m, ksub, codes.data(), count,
                                tile.data());
      for (int g = 0; g < nq; ++g) {
        internal::PqAdcBatchScalar(tables[g], m, ksub, codes.data(), count,
                                   want.data());
        for (int c = 0; c < count; ++c) {
          EXPECT_EQ(tile[g * count + c], want[c])
              << "scalar nq=" << nq << " g=" << g << " c=" << c;
        }
      }
#if defined(RESINFER_HAVE_AVX2)
      internal::PqAdcTileAvx2(tables, nq, m, ksub, codes.data(), count,
                              tile.data());
      for (int g = 0; g < nq; ++g) {
        internal::PqAdcBatchAvx2(tables[g], m, ksub, codes.data(), count,
                                 want.data());
        for (int c = 0; c < count; ++c) {
          EXPECT_EQ(tile[g * count + c], want[c])
              << "avx2 nq=" << nq << " g=" << g << " c=" << c;
        }
      }
#endif
#if defined(RESINFER_HAVE_AVX512)
      if (HasAvx512()) {
        internal::PqAdcTileAvx512(tables, nq, m, ksub, codes.data(), count,
                                  tile.data());
        for (int g = 0; g < nq; ++g) {
          internal::PqAdcBatchAvx512(tables[g], m, ksub, codes.data(), count,
                                     want.data());
          for (int c = 0; c < count; ++c) {
            EXPECT_EQ(tile[g * count + c], want[c])
                << "avx512 nq=" << nq << " g=" << g << " c=" << c;
          }
        }
      }
#endif
    }
  }
  }
}

TEST(KernelsTest, PqAdcFastScanExactAcrossLevels) {
  // Fast-scan sums are integral: every level must return the exact u16 of
  // the scalar reference, for all count tails (1..16+) and odd/even m.
  Rng rng(101);
  for (int m : {1, 2, 7, 8, 15, 16, 32, 63}) {
    const int packed = (m + 1) / 2;
    std::vector<uint8_t> lut(static_cast<std::size_t>(packed) * 32);
    for (auto& b : lut) b = static_cast<uint8_t>(rng.Uniform() * 255.0);
    // Odd m: sub-table for the pad nibble must be zero so high nibbles of
    // the last byte contribute nothing.
    if (m & 1) {
      for (int i = 0; i < 16; ++i) lut[(m & ~1) * 16 + 16 + i] = 0;
    }
    for (int count : {1, 3, 15, 16, 17, 33}) {
      std::vector<std::vector<uint8_t>> code_storage(
          count, std::vector<uint8_t>(packed));
      std::vector<const uint8_t*> codes(count);
      for (int c = 0; c < count; ++c) {
        for (int j = 0; j < packed; ++j) {
          code_storage[c][j] = static_cast<uint8_t>(rng.Uniform() * 255.0);
        }
        codes[c] = code_storage[c].data();
      }
      std::vector<uint16_t> want(count), got(count);
      for (int c = 0; c < count; ++c) {
        want[c] = PqAdcFastScanOne(lut.data(), m, codes[c]);
      }
      internal::PqAdcFastScanScalar(lut.data(), m, codes.data(), count,
                                    got.data());
      for (int c = 0; c < count; ++c) {
        EXPECT_EQ(got[c], want[c]) << "scalar m=" << m << " c=" << c;
      }
#if defined(RESINFER_HAVE_AVX2)
      internal::PqAdcFastScanAvx2(lut.data(), m, codes.data(), count,
                                  got.data());
      for (int c = 0; c < count; ++c) {
        EXPECT_EQ(got[c], want[c]) << "avx2 m=" << m << " c=" << c;
      }
#endif
#if defined(RESINFER_HAVE_AVX512)
      if (HasAvx512()) {
        internal::PqAdcFastScanAvx512(lut.data(), m, codes.data(), count,
                                      got.data());
        for (int c = 0; c < count; ++c) {
          EXPECT_EQ(got[c], want[c]) << "avx512 m=" << m << " c=" << c;
        }
      }
#endif
    }
  }
}

TEST(KernelsTest, PqAdcFastScanTileExactAcrossLevels) {
  // The query-group form must agree with per-LUT PqAdcFastScan exactly at
  // every level, for group-size remainders and count tails alike.
  Rng rng(111);
  const int m = 24, packed = (m + 1) / 2;
  std::vector<std::vector<uint8_t>> lut_storage;
  const uint8_t* luts[5];
  for (int g = 0; g < 5; ++g) {
    std::vector<uint8_t> lut(static_cast<std::size_t>(packed) * 32);
    for (auto& b : lut) b = static_cast<uint8_t>(rng.Uniform() * 255.0);
    lut_storage.push_back(std::move(lut));
  }
  for (int g = 0; g < 5; ++g) luts[g] = lut_storage[g].data();

  for (int count : {1, 9, 16, 21}) {
    std::vector<std::vector<uint8_t>> code_storage(
        count, std::vector<uint8_t>(packed));
    std::vector<const uint8_t*> codes(count);
    for (int c = 0; c < count; ++c) {
      for (int j = 0; j < packed; ++j) {
        code_storage[c][j] = static_cast<uint8_t>(rng.Uniform() * 255.0);
      }
      codes[c] = code_storage[c].data();
    }
    for (int nq : {1, 2, 5}) {
      std::vector<uint16_t> tile(static_cast<std::size_t>(nq) * count);
      std::vector<uint16_t> want(count);
      internal::PqAdcFastScanTileScalar(luts, nq, m, codes.data(), count,
                                        tile.data());
      for (int g = 0; g < nq; ++g) {
        internal::PqAdcFastScanScalar(luts[g], m, codes.data(), count,
                                      want.data());
        for (int c = 0; c < count; ++c) {
          EXPECT_EQ(tile[g * count + c], want[c])
              << "scalar nq=" << nq << " g=" << g << " c=" << c;
        }
      }
#if defined(RESINFER_HAVE_AVX2)
      internal::PqAdcFastScanTileAvx2(luts, nq, m, codes.data(), count,
                                      tile.data());
      for (int g = 0; g < nq; ++g) {
        internal::PqAdcFastScanScalar(luts[g], m, codes.data(), count,
                                      want.data());
        for (int c = 0; c < count; ++c) {
          EXPECT_EQ(tile[g * count + c], want[c])
              << "avx2 nq=" << nq << " g=" << g << " c=" << c;
        }
      }
#endif
#if defined(RESINFER_HAVE_AVX512)
      if (HasAvx512()) {
        internal::PqAdcFastScanTileAvx512(luts, nq, m, codes.data(), count,
                                          tile.data());
        for (int g = 0; g < nq; ++g) {
          internal::PqAdcFastScanScalar(luts[g], m, codes.data(), count,
                                        want.data());
          for (int c = 0; c < count; ++c) {
            EXPECT_EQ(tile[g * count + c], want[c])
                << "avx512 nq=" << nq << " g=" << g << " c=" << c;
          }
        }
      }
#endif
    }
  }
}

TEST(DispatchTest, BatchEntryPointsFollowActiveLevel) {
  auto q = RandomVec(48, 51);
  std::vector<std::vector<float>> row_storage;
  const float* rows[4];
  for (int r = 0; r < 4; ++r) row_storage.push_back(RandomVec(48, 52 + r));
  for (int r = 0; r < 4; ++r) rows[r] = row_storage[r].data();
  float out[4];
  ScopedSimdLevel guard(SimdLevel::kScalar);
  L2SqrBatch4(q.data(), rows, 48, out);
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(out[r], internal::L2SqrScalar(rows[r], q.data(), 48));
  }
}

TEST(KernelsTest, KnownValues) {
  const float a[4] = {1, 2, 3, 4};
  const float b[4] = {0, 2, 5, 1};
  // (1-0)^2 + 0 + (3-5)^2 + (4-1)^2 = 1 + 4 + 9 = 14
  EXPECT_FLOAT_EQ(internal::L2SqrScalar(a, b, 4), 14.0f);
  // 0 + 4 + 15 + 4 = 23
  EXPECT_FLOAT_EQ(internal::InnerProductScalar(a, b, 4), 23.0f);
  EXPECT_FLOAT_EQ(internal::Norm2SqrScalar(a, 4), 30.0f);
}

TEST(KernelsTest, ZeroLength) {
  const float a[1] = {1.0f};
  EXPECT_EQ(L2Sqr(a, a, 0), 0.0f);
  EXPECT_EQ(InnerProduct(a, a, 0), 0.0f);
  EXPECT_EQ(Norm2Sqr(a, 0), 0.0f);
}

TEST(KernelsTest, L2SqrIdenticalVectorsIsZero) {
  auto a = RandomVec(301, 7);
  EXPECT_EQ(L2Sqr(a.data(), a.data(), a.size()), 0.0f);
}

TEST(DispatchTest, LevelSwitching) {
  SimdLevel best = BestSupportedLevel();
  EXPECT_EQ(ActiveLevel(), best);
  {
    ScopedSimdLevel guard(SimdLevel::kScalar);
    EXPECT_EQ(ActiveLevel(), SimdLevel::kScalar);
  }
  EXPECT_EQ(ActiveLevel(), best);
  EXPECT_STREQ(SimdLevelName(SimdLevel::kScalar), "scalar");
  EXPECT_STREQ(SimdLevelName(SimdLevel::kAvx2), "avx2");
}

TEST(DispatchTest, UnsupportedLevelClampsDown) {
  SetActiveLevel(SimdLevel::kAvx2);
  EXPECT_LE(ActiveLevel(), BestSupportedLevel());
  SetActiveLevel(BestSupportedLevel());
}

// --- CRC32C (persistence checksums) ----------------------------------------

TEST(Crc32cTest, KnownAnswerVectors) {
  // RFC 3720 / Castagnoli check value: crc32c("123456789") = 0xE3069283.
  const char digits[] = "123456789";
  EXPECT_EQ(internal::Crc32cScalar(0, digits, 9), 0xE3069283u);
  EXPECT_EQ(Crc32c(0, digits, 9), 0xE3069283u);
  // 32 zero bytes: second classic known-answer value.
  const uint8_t zeros[32] = {0};
  EXPECT_EQ(internal::Crc32cScalar(0, zeros, 32), 0x8A9136AAu);
  // Empty input leaves the running CRC untouched.
  EXPECT_EQ(Crc32c(0, digits, 0), 0u);
  EXPECT_EQ(Crc32c(0x12345678u, digits, 0), 0x12345678u);
}

TEST(Crc32cTest, AllLevelsAgreeAcrossLengths) {
  // Sweep lengths around the 8-byte word boundary the fast paths use, at
  // several alignments, and compare every supported dispatch level against
  // the scalar reference.
  Rng rng(42);
  std::vector<uint8_t> buf(1024 + 16);
  for (auto& b : buf) b = static_cast<uint8_t>(rng.UniformInt(256));
  for (SimdLevel level : SupportedLevels()) {
    ScopedSimdLevel guard(level);
    for (std::size_t offset : {0, 1, 3, 7}) {
      for (std::size_t n :
           {std::size_t{0}, std::size_t{1}, std::size_t{7}, std::size_t{8},
            std::size_t{9}, std::size_t{63}, std::size_t{64},
            std::size_t{65}, std::size_t{1024}}) {
        EXPECT_EQ(Crc32c(0xdeadbeefu, buf.data() + offset, n),
                  internal::Crc32cScalar(0xdeadbeefu, buf.data() + offset, n))
            << SimdLevelName(level) << " offset " << offset << " n " << n;
      }
    }
  }
}

TEST(Crc32cTest, ChainingMatchesOneShot) {
  // Feeding a buffer in pieces (seeding each piece with the previous CRC)
  // must equal hashing it in one call — this is how the persist layer
  // accumulates section checksums across Write calls.
  Rng rng(43);
  std::vector<uint8_t> buf(777);
  for (auto& b : buf) b = static_cast<uint8_t>(rng.UniformInt(256));
  const uint32_t one_shot = Crc32c(0, buf.data(), buf.size());
  uint32_t chained = 0;
  for (std::size_t start = 0; start < buf.size();) {
    const std::size_t piece = std::min<std::size_t>(130, buf.size() - start);
    chained = Crc32c(chained, buf.data() + start, piece);
    start += piece;
  }
  EXPECT_EQ(chained, one_shot);
  // Different content must (for these vectors) yield a different CRC.
  std::vector<uint8_t> other(buf);
  other[400] ^= 0x01;
  EXPECT_NE(Crc32c(0, other.data(), other.size()), one_shot);
}

}  // namespace
}  // namespace resinfer::simd

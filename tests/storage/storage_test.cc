// Storage backend unit suite: Blob ownership/slicing semantics, the two
// VectorStorage implementations, backend-name parsing, and the
// RESINFER_STORAGE process default. The scan-level guarantees (bit-identical
// results across backends) live in tests/index/storage_parity_test.cc; this
// file pins the byte-level contracts those tests build on.
#include "storage/storage.h"

#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/aligned_buffer.h"

namespace resinfer::storage {
namespace {

class StorageTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "resinfer_storage_test";
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  std::string WriteFile(const std::string& name,
                        const std::vector<uint8_t>& bytes) {
    const std::string path = Path(name);
    std::ofstream out(path, std::ios::binary);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    return path;
  }

  std::filesystem::path dir_;
};

bool Is64Aligned(const void* p) {
  return reinterpret_cast<uintptr_t>(p) % kCacheLineBytes == 0;
}

TEST_F(StorageTest, DefaultBlobIsEmpty) {
  Blob blob;
  EXPECT_TRUE(blob.empty());
  EXPECT_EQ(blob.size(), 0);
  EXPECT_EQ(blob.data(), nullptr);
  EXPECT_FALSE(blob.unique());
  EXPECT_FALSE(blob.SharesOwnerWith(blob));  // no owner to share
}

TEST_F(StorageTest, AllocateAlignedZeroesAndAligns) {
  uint8_t* mutable_data = nullptr;
  Blob blob = Blob::AllocateAligned(100, &mutable_data);
  ASSERT_EQ(blob.size(), 100);
  ASSERT_NE(mutable_data, nullptr);
  EXPECT_EQ(mutable_data, blob.data());
  EXPECT_TRUE(Is64Aligned(blob.data()));
  for (int64_t i = 0; i < blob.size(); ++i) {
    EXPECT_EQ(blob.data()[i], 0) << i;
  }
  // The mutable window: writes land in the blob while the handle is unique.
  EXPECT_TRUE(blob.unique());
  mutable_data[7] = 42;
  EXPECT_EQ(blob.data()[7], 42);
  Blob second = blob;
  EXPECT_FALSE(blob.unique());
  EXPECT_TRUE(blob.SharesOwnerWith(second));
}

TEST_F(StorageTest, CopyOfIsIndependentOfTheSource) {
  std::vector<uint8_t> source = {1, 2, 3, 4, 5};
  Blob blob = Blob::CopyOf(source.data(), 5);
  source.assign(5, 0xff);
  ASSERT_EQ(blob.size(), 5);
  EXPECT_TRUE(Is64Aligned(blob.data()));
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(blob.data()[i], i + 1);
  }
}

TEST_F(StorageTest, TakeVectorAdoptsWithoutCopying) {
  std::vector<uint8_t> bytes = {9, 8, 7};
  const uint8_t* original = bytes.data();
  Blob blob = Blob::TakeVector(std::move(bytes));
  ASSERT_EQ(blob.size(), 3);
  // The vector's own allocation backs the blob — no bytes moved.
  EXPECT_EQ(blob.data(), original);
}

TEST_F(StorageTest, SliceIsZeroCopyAndSharesTheOwner) {
  Blob blob = Blob::CopyOf("abcdefgh", 8);
  Blob slice = blob.Slice(2, 4);
  ASSERT_EQ(slice.size(), 4);
  EXPECT_EQ(slice.data(), blob.data() + 2);
  EXPECT_TRUE(slice.SharesOwnerWith(blob));
  // A slice keeps the backing alive after the original handle drops.
  blob = Blob();
  EXPECT_EQ(std::memcmp(slice.data(), "cdef", 4), 0);
  // Zero-length slices are empty blobs with no owner to pin.
  EXPECT_TRUE(slice.Slice(1, 0).empty());
}

TEST_F(StorageTest, MemoryStorageFetchesSharedSlices) {
  Blob bytes = Blob::CopyOf("0123456789", 10);
  const uint8_t* base = bytes.data();
  MemoryStorage storage(std::move(bytes));
  EXPECT_EQ(storage.backend(), StorageBackend::kMemory);
  EXPECT_EQ(storage.size_bytes(), 10);
  EXPECT_EQ(storage.name(), "memory(10 bytes)");

  Blob fetched;
  util::Status s = storage.Fetch(3, 4, &fetched);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(fetched.data(), base + 3);
  EXPECT_EQ(fetched.size(), 4);

  // Offsets come from file headers: out-of-range is a recoverable error.
  EXPECT_EQ(storage.Fetch(8, 4, &fetched).code(),
            util::StatusCode::kInvalidArgument);
  EXPECT_EQ(storage.Fetch(-1, 2, &fetched).code(),
            util::StatusCode::kInvalidArgument);
  EXPECT_EQ(storage.Fetch(0, -2, &fetched).code(),
            util::StatusCode::kInvalidArgument);
}

TEST_F(StorageTest, MapFileReadOnlyServesFileBytes) {
  std::vector<uint8_t> content(130);
  for (std::size_t i = 0; i < content.size(); ++i) {
    content[i] = static_cast<uint8_t>(i);
  }
  const std::string path = WriteFile("blob.bin", content);

  Blob mapping;
  util::Status s = MapFileReadOnly(path, &mapping);
  ASSERT_TRUE(s.ok()) << s.ToString();
  ASSERT_EQ(mapping.size(), static_cast<int64_t>(content.size()));
  EXPECT_EQ(std::memcmp(mapping.data(), content.data(), content.size()), 0);
  // mmap returns page-aligned addresses, which are 64-byte aligned a
  // fortiori — the property the v6 code-section alignment builds on.
  EXPECT_TRUE(Is64Aligned(mapping.data()));

  EXPECT_EQ(MapFileReadOnly(Path("missing.bin"), &mapping).code(),
            util::StatusCode::kNotFound);

  Blob empty;
  ASSERT_TRUE(MapFileReadOnly(WriteFile("empty.bin", {}), &empty).ok());
  EXPECT_TRUE(empty.empty());
}

TEST_F(StorageTest, MmapFileStorageFetchOutlivesTheStorageObject) {
  const std::string path = WriteFile("store.bin", {10, 20, 30, 40, 50});
  Blob fetched;
  {
    auto opened = MmapFileStorage::Open(path);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    std::shared_ptr<MmapFileStorage> storage = std::move(opened).value();
    EXPECT_EQ(storage->backend(), StorageBackend::kMmap);
    EXPECT_EQ(storage->size_bytes(), 5);
    EXPECT_EQ(storage->path(), path);
    EXPECT_EQ(storage->name(), "mmap(" + path + ")");
    util::Status s = storage->Fetch(1, 3, &fetched);
    ASSERT_TRUE(s.ok()) << s.ToString();
    Blob overrun;
    EXPECT_EQ(storage->Fetch(3, 3, &overrun).code(),
              util::StatusCode::kInvalidArgument);
  }
  // The fetched blob pins the mapping; dropping the storage object must not
  // unmap under a dispatched scan.
  ASSERT_EQ(fetched.size(), 3);
  EXPECT_EQ(fetched.data()[0], 20);
  EXPECT_EQ(fetched.data()[2], 40);

  EXPECT_FALSE(MmapFileStorage::Open(Path("missing.bin")).ok());
}

TEST_F(StorageTest, ParseStorageBackendAcceptsKnownSpellings) {
  StorageBackend backend = StorageBackend::kMmap;
  EXPECT_TRUE(ParseStorageBackend("memory", &backend).ok());
  EXPECT_EQ(backend, StorageBackend::kMemory);
  EXPECT_TRUE(ParseStorageBackend("MMAP", &backend).ok());
  EXPECT_EQ(backend, StorageBackend::kMmap);
  EXPECT_TRUE(ParseStorageBackend("Mem", &backend).ok());
  EXPECT_EQ(backend, StorageBackend::kMemory);
  EXPECT_TRUE(ParseStorageBackend("heap", &backend).ok());
  EXPECT_EQ(backend, StorageBackend::kMemory);

  util::Status s = ParseStorageBackend("disk", &backend);
  EXPECT_EQ(s.code(), util::StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("memory|mmap"), std::string::npos);
  EXPECT_EQ(StorageBackendName(StorageBackend::kMemory),
            std::string("memory"));
  EXPECT_EQ(StorageBackendName(StorageBackend::kMmap), std::string("mmap"));
}

TEST_F(StorageTest, DefaultStorageBackendFollowsTheEnvironment) {
  const char* saved = std::getenv("RESINFER_STORAGE");
  const std::string restore = saved != nullptr ? saved : "";

  ::unsetenv("RESINFER_STORAGE");
  EXPECT_EQ(DefaultStorageBackend(), StorageBackend::kMemory);
  ::setenv("RESINFER_STORAGE", "mmap", 1);
  EXPECT_EQ(DefaultStorageBackend(), StorageBackend::kMmap);
  ::setenv("RESINFER_STORAGE", "memory", 1);
  EXPECT_EQ(DefaultStorageBackend(), StorageBackend::kMemory);
  // Junk degrades to the safe default instead of aborting a server.
  ::setenv("RESINFER_STORAGE", "floppy", 1);
  EXPECT_EQ(DefaultStorageBackend(), StorageBackend::kMemory);

  if (saved != nullptr) {
    ::setenv("RESINFER_STORAGE", restore.c_str(), 1);
  } else {
    ::unsetenv("RESINFER_STORAGE");
  }
}

}  // namespace
}  // namespace resinfer::storage

// Shared helpers for the test suite: tiny deterministic datasets and
// tolerance helpers.
#ifndef RESINFER_TESTS_TEST_UTIL_H_
#define RESINFER_TESTS_TEST_UTIL_H_

#include <cstdint>

#include "data/dataset.h"
#include "data/synthetic.h"
#include "linalg/matrix.h"
#include "util/rng.h"

namespace resinfer::testing {

// A small skewed-spectrum clustered dataset, fast enough for every test.
inline data::Dataset SmallDataset(int64_t n = 2000, int64_t dim = 48,
                                  double alpha = 1.0, uint64_t seed = 7,
                                  int64_t queries = 32,
                                  int64_t train_queries = 200) {
  data::SyntheticSpec spec;
  spec.name = "test";
  spec.dim = dim;
  spec.num_base = n;
  spec.num_queries = queries;
  spec.num_train_queries = train_queries;
  spec.num_clusters = 16;
  spec.spectrum_alpha = alpha;
  spec.seed = seed;
  return data::GenerateSynthetic(spec);
}

// Random dense matrix with N(0,1) entries.
inline linalg::Matrix RandomMatrix(int64_t rows, int64_t cols,
                                   uint64_t seed = 3) {
  Rng rng(seed);
  linalg::Matrix m(rows, cols);
  for (int64_t i = 0; i < m.size(); ++i)
    m.data()[i] = static_cast<float>(rng.Gaussian());
  return m;
}

// Random symmetric matrix A = B + B^T.
inline linalg::Matrix RandomSymmetric(int64_t n, uint64_t seed = 5) {
  linalg::Matrix b = RandomMatrix(n, n, seed);
  linalg::Matrix a(n, n);
  for (int64_t i = 0; i < n; ++i)
    for (int64_t j = 0; j < n; ++j)
      a.At(i, j) = 0.5f * (b.At(i, j) + b.At(j, i));
  return a;
}

}  // namespace resinfer::testing

#endif  // RESINFER_TESTS_TEST_UTIL_H_

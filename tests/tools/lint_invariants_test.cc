// Tests for the repo-invariant linter itself: each check must flag a
// seeded violation in a synthetic fixture tree and stay quiet on the
// equivalent clean tree — a linter that cannot catch its own seeded bugs
// proves nothing in CI.
#include "lint_invariants_lib.h"

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace resinfer::lint {
namespace {

namespace fs = std::filesystem;

// A throwaway repo-shaped tree under the test temp dir.
class FixtureTree {
 public:
  FixtureTree() {
    root_ = fs::path(::testing::TempDir()) /
            ("lint_fixture_" +
             std::to_string(reinterpret_cast<uintptr_t>(this)));
    fs::remove_all(root_);
    fs::create_directories(root_);
  }
  ~FixtureTree() {
    std::error_code ec;
    fs::remove_all(root_, ec);
  }

  const fs::path& root() const { return root_; }

  void WriteFile(const std::string& rel_path, const std::string& contents) {
    const fs::path path = root_ / rel_path;
    fs::create_directories(path.parent_path());
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.is_open()) << path;
    out << contents;
  }

 private:
  fs::path root_;
};

std::vector<std::string> Rules(const std::vector<Violation>& violations) {
  std::vector<std::string> rules;
  for (const Violation& v : violations) rules.push_back(v.rule);
  return rules;
}

// ---------------------------------------------------------------------------
// KernelTable completeness
// ---------------------------------------------------------------------------

// A miniature dispatch.cc: 1 level tag + 3 kernel fields.
constexpr char kDispatchHeader[] = R"(
namespace resinfer::simd {
struct KernelTable {
  SimdLevel level;
  float (*l2_sqr)(const float*, const float*, int64_t);
  float (*dot)(const float*, const float*, int64_t);
  void (*scan)(const uint8_t*, int, float*);
};
)";

constexpr char kCompleteTables[] = R"(
constexpr KernelTable kScalarTable = {SimdLevel::kScalar, L2SqrScalar,
                                      DotScalar, ScanScalar};
#if defined(RESINFER_HAVE_AVX2)
constexpr KernelTable kAvx2Table = {SimdLevel::kAvx2, L2SqrAvx2, DotAvx2,
                                    ScanAvx2};
#endif
#if defined(RESINFER_HAVE_AVX512)
constexpr KernelTable kAvx512Table = {SimdLevel::kAvx512, L2SqrAvx512,
                                      DotAvx512, ScanAvx512};
#endif
}  // namespace resinfer::simd
)";

TEST(LintKernelTableTest, CompleteTablesAreClean) {
  const std::vector<Violation> violations = CheckKernelTableSource(
      std::string(kDispatchHeader) + kCompleteTables, "dispatch.cc");
  EXPECT_TRUE(violations.empty()) << violations.front().ToString();
}

TEST(LintKernelTableTest, FlagsMissingAvx512Entry) {
  // kAvx512Table lists only 3 of 4 fields: aggregate init would null-fill
  // the scan kernel. This is the exact seeded violation from the issue.
  constexpr char kShortAvx512[] = R"(
constexpr KernelTable kScalarTable = {SimdLevel::kScalar, L2SqrScalar,
                                      DotScalar, ScanScalar};
constexpr KernelTable kAvx2Table = {SimdLevel::kAvx2, L2SqrAvx2, DotAvx2,
                                    ScanAvx2};
constexpr KernelTable kAvx512Table = {SimdLevel::kAvx512, L2SqrAvx512,
                                      DotAvx512};
}  // namespace resinfer::simd
)";
  const std::vector<Violation> violations = CheckKernelTableSource(
      std::string(kDispatchHeader) + kShortAvx512, "dispatch.cc");
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].rule, "kernel-table");
  EXPECT_NE(violations[0].message.find("kAvx512Table"), std::string::npos);
  EXPECT_NE(violations[0].message.find("3 of 4"), std::string::npos)
      << violations[0].message;
}

TEST(LintKernelTableTest, FlagsExplicitNullKernel) {
  constexpr char kNullEntry[] = R"(
constexpr KernelTable kScalarTable = {SimdLevel::kScalar, L2SqrScalar,
                                      DotScalar, ScanScalar};
constexpr KernelTable kAvx2Table = {SimdLevel::kAvx2, L2SqrAvx2, DotAvx2,
                                    nullptr};
constexpr KernelTable kAvx512Table = {SimdLevel::kAvx512, L2SqrAvx512,
                                      DotAvx512, ScanAvx512};
)";
  const std::vector<Violation> violations = CheckKernelTableSource(
      std::string(kDispatchHeader) + kNullEntry, "dispatch.cc");
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].message.find("null kernel"), std::string::npos);
}

TEST(LintKernelTableTest, FlagsMissingTableEntirely) {
  constexpr char kNoAvx512[] = R"(
constexpr KernelTable kScalarTable = {SimdLevel::kScalar, L2SqrScalar,
                                      DotScalar, ScanScalar};
constexpr KernelTable kAvx2Table = {SimdLevel::kAvx2, L2SqrAvx2, DotAvx2,
                                    ScanAvx2};
)";
  const std::vector<Violation> violations = CheckKernelTableSource(
      std::string(kDispatchHeader) + kNoAvx512, "dispatch.cc");
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].message.find("kAvx512Table"), std::string::npos);
}

TEST(LintKernelTableTest, IgnoresCommentedOutEntries) {
  // A commented-out fifth field must not count as a struct member, and a
  // commented-out entry must not count as populated.
  constexpr char kCommented[] = R"(
namespace resinfer::simd {
struct KernelTable {
  SimdLevel level;
  float (*l2_sqr)(const float*, const float*, int64_t);
  // float (*dot_disabled)(const float*, const float*, int64_t);
};
constexpr KernelTable kScalarTable = {SimdLevel::kScalar, L2SqrScalar};
constexpr KernelTable kAvx2Table = {SimdLevel::kAvx2, L2SqrAvx2};
constexpr KernelTable kAvx512Table = {SimdLevel::kAvx512, L2SqrAvx512};
}
)";
  EXPECT_TRUE(CheckKernelTableSource(kCommented, "dispatch.cc").empty());
}

// ---------------------------------------------------------------------------
// Persist baseline: version floors + frozen fixtures
// ---------------------------------------------------------------------------

class LintBaselineTest : public ::testing::Test {
 protected:
  void SeedCleanTree() {
    tree_.WriteFile("src/persist/persist.cc",
                    "constexpr uint32_t kVersion = 3;\n"
                    "constexpr uint32_t kIvfVersionChecksum = 5;\n");
    tree_.WriteFile("tests/persist/testdata/ivf_v1.bin", "frozen-bytes-v1");
    const std::string fixture = "frozen-bytes-v1";
    char hash_hex[17];
    std::snprintf(hash_hex, sizeof(hash_hex), "%016llx",
                  static_cast<unsigned long long>(Fnv1a64(fixture)));
    tree_.WriteFile("tools/lint_baseline.txt",
                    "version kVersion 3\n"
                    "version kIvfVersionChecksum 5\n"
                    "fixture tests/persist/testdata/ivf_v1.bin " +
                        std::to_string(fixture.size()) + " " + hash_hex +
                        "\n");
  }

  std::vector<Violation> Run() {
    return CheckPersistBaseline(tree_.root(),
                                tree_.root() / "tools" / "lint_baseline.txt");
  }

  FixtureTree tree_;
};

TEST_F(LintBaselineTest, CleanTreePasses) {
  SeedCleanTree();
  const std::vector<Violation> violations = Run();
  EXPECT_TRUE(violations.empty())
      << violations.front().ToString();
}

TEST_F(LintBaselineTest, VersionBumpIsAllowed) {
  SeedCleanTree();
  tree_.WriteFile("src/persist/persist.cc",
                  "constexpr uint32_t kVersion = 4;\n"
                  "constexpr uint32_t kIvfVersionChecksum = 6;\n");
  EXPECT_TRUE(Run().empty());
}

TEST_F(LintBaselineTest, FlagsVersionRegression) {
  SeedCleanTree();
  tree_.WriteFile("src/persist/persist.cc",
                  "constexpr uint32_t kVersion = 2;\n"
                  "constexpr uint32_t kIvfVersionChecksum = 5;\n");
  const std::vector<Violation> violations = Run();
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].rule, "persist-version");
  EXPECT_NE(violations[0].message.find("regressed"), std::string::npos);
}

TEST_F(LintBaselineTest, FlagsRemovedVersionConstant) {
  SeedCleanTree();
  tree_.WriteFile("src/persist/persist.cc",
                  "constexpr uint32_t kVersion = 3;\n");
  const std::vector<Violation> violations = Run();
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].message.find("kIvfVersionChecksum"),
            std::string::npos);
}

TEST_F(LintBaselineTest, FlagsMutatedFrozenFixture) {
  SeedCleanTree();
  // Same length, one byte flipped — size alone would miss it.
  tree_.WriteFile("tests/persist/testdata/ivf_v1.bin", "frozen-bytes-v2");
  const std::vector<Violation> violations = Run();
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].rule, "frozen-fixture");
  EXPECT_NE(violations[0].message.find("immutable"), std::string::npos);
}

TEST_F(LintBaselineTest, FlagsDeletedFrozenFixture) {
  SeedCleanTree();
  fs::remove(tree_.root() / "tests" / "persist" / "testdata" / "ivf_v1.bin");
  const std::vector<Violation> violations = Run();
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].message.find("missing"), std::string::npos);
}

TEST_F(LintBaselineTest, NewFixtureNeedsNoBaselineEntry) {
  SeedCleanTree();
  // Adding a NEW fixture (next format version) is the sanctioned workflow;
  // only baseline-listed files are frozen.
  tree_.WriteFile("tests/persist/testdata/ivf_v6.bin", "new-version-bytes");
  EXPECT_TRUE(Run().empty());
}

TEST_F(LintBaselineTest, GenerateRoundTrips) {
  SeedCleanTree();
  // A regenerated baseline over a clean tree must itself verify clean.
  const std::string manifest = GenerateBaseline(tree_.root());
  tree_.WriteFile("tools/lint_baseline.txt", manifest);
  EXPECT_TRUE(Run().empty());
  // And it must carry both record kinds.
  EXPECT_NE(manifest.find("version kVersion 3"), std::string::npos);
  EXPECT_NE(manifest.find("fixture tests/persist/testdata/ivf_v1.bin"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Concurrency confinement
// ---------------------------------------------------------------------------

TEST(LintConcurrencyTest, FlagsNakedMutexOutsideServeAndUtil) {
  FixtureTree tree;
  tree.WriteFile("src/index/cache.h",
                 "#include <mutex>\n"
                 "struct Cache { std::mutex mu; };\n");
  const std::vector<Violation> violations =
      CheckConcurrencyPrimitives(tree.root());
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].rule, "naked-concurrency");
  EXPECT_EQ(violations[0].file, "src/index/cache.h");
  EXPECT_EQ(violations[0].line, 2);
}

TEST(LintConcurrencyTest, AllowsPrimitivesInServeAndUtil) {
  FixtureTree tree;
  tree.WriteFile("src/serve/admission.h", "std::thread flusher_;\n");
  tree.WriteFile("src/util/thread_annotations.h", "std::mutex mu_;\n");
  EXPECT_TRUE(CheckConcurrencyPrimitives(tree.root()).empty());
}

TEST(LintConcurrencyTest, IgnoresCommentsAndLongerIdentifiers) {
  FixtureTree tree;
  tree.WriteFile("src/index/notes.cc",
                 "// std::mutex would be wrong here, use util::Mutex\n"
                 "thread_local int counter = 0;\n");
  EXPECT_TRUE(CheckConcurrencyPrimitives(tree.root()).empty());
}

// ---------------------------------------------------------------------------
// Status-only load path
// ---------------------------------------------------------------------------

TEST(LintLoadPathTest, FlagsCheckOnLoadPath) {
  // The seeded violation from the issue: a CHECK guarding untrusted bytes.
  const std::string source =
      "Status LoadHeader(Reader& in) {\n"
      "  RESINFER_CHECK(in.magic() == kMagic);\n"
      "  return Status::Ok();\n"
      "}\n";
  const std::vector<Violation> violations =
      CheckLoadPathSource(source, "src/persist/persist.cc");
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].rule, "check-on-load-path");
  EXPECT_EQ(violations[0].line, 2);
}

TEST(LintLoadPathTest, FlagsDcheckToo) {
  const std::vector<Violation> violations = CheckLoadPathSource(
      "RESINFER_DCHECK(count >= 0);\n", "src/data/vec_io.cc");
  ASSERT_EQ(violations.size(), 1u);
}

TEST(LintLoadPathTest, AllowCheckOptOut) {
  const std::vector<Violation> violations = CheckLoadPathSource(
      "RESINFER_CHECK(scratch_ != nullptr);  "
      "// lint: allow-check internal buffer, not input bytes\n",
      "src/persist/persist.cc");
  EXPECT_TRUE(violations.empty());
}

TEST(LintLoadPathTest, IgnoresChecksInComments) {
  const std::vector<Violation> violations = CheckLoadPathSource(
      "// Unlike RESINFER_CHECK, corruption here returns a Status.\n",
      "src/persist/persist.cc");
  EXPECT_TRUE(violations.empty());
}

TEST(LintLoadPathTest, WalksPersistDirAndVecIo) {
  FixtureTree tree;
  tree.WriteFile("src/persist/persist.cc", "RESINFER_CHECK(a);\n");
  tree.WriteFile("src/data/vec_io.cc", "RESINFER_DCHECK(b);\n");
  tree.WriteFile("src/index/other.cc", "RESINFER_CHECK(c);\n");  // off-path
  const std::vector<Violation> violations = CheckLoadPath(tree.root());
  ASSERT_EQ(violations.size(), 2u);
  EXPECT_EQ(violations[0].file, "src/data/vec_io.cc");
  EXPECT_EQ(violations[1].file, "src/persist/persist.cc");
}

// ---------------------------------------------------------------------------
// The real tree must be clean (this is what the CI job asserts)
// ---------------------------------------------------------------------------

TEST(LintRepoTest, RealTreePassesAllChecks) {
  const fs::path root(RESINFER_SOURCE_DIR);
  const std::vector<Violation> violations =
      RunAllChecks(root, root / "tools" / "lint_baseline.txt");
  for (const Violation& v : violations) {
    ADD_FAILURE() << v.ToString();
  }
}

}  // namespace
}  // namespace resinfer::lint

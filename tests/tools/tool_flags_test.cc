#include "tool_flags.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace resinfer::tools {
namespace {

// Builds argv from string literals (argv[0] is the program name).
class Args {
 public:
  explicit Args(std::vector<std::string> args) : storage_(std::move(args)) {
    pointers_.push_back(const_cast<char*>("test"));
    for (auto& s : storage_) pointers_.push_back(s.data());
  }
  int argc() const { return static_cast<int>(pointers_.size()); }
  char** argv() { return pointers_.data(); }

 private:
  std::vector<std::string> storage_;
  std::vector<char*> pointers_;
};

TEST(ToolFlagsTest, SpaceAndEqualsSyntaxBothParse) {
  Args args({"--alpha", "1.5", "--name=demo"});
  ArgParser parser(args.argc(), args.argv());
  EXPECT_DOUBLE_EQ(parser.GetDouble("alpha", 0.0), 1.5);
  EXPECT_EQ(parser.GetString("name"), "demo");
  EXPECT_TRUE(parser.Validate());
}

TEST(ToolFlagsTest, DefaultsApplyWhenFlagAbsent) {
  Args args({});
  ArgParser parser(args.argc(), args.argv());
  EXPECT_EQ(parser.GetInt("n", 42), 42);
  EXPECT_EQ(parser.GetString("out", "fallback"), "fallback");
  EXPECT_TRUE(parser.GetBool("verbose", true));
  EXPECT_TRUE(parser.Validate());
}

TEST(ToolFlagsTest, BareSwitchIsTrue) {
  Args args({"--force"});
  ArgParser parser(args.argc(), args.argv());
  EXPECT_TRUE(parser.GetBool("force", false));
  EXPECT_TRUE(parser.Has("force"));
  EXPECT_TRUE(parser.Validate());
}

TEST(ToolFlagsTest, FalseAndZeroDisableBoolean) {
  Args args({"--a=false", "--b=0", "--c=yes"});
  ArgParser parser(args.argc(), args.argv());
  EXPECT_FALSE(parser.GetBool("a", true));
  EXPECT_FALSE(parser.GetBool("b", true));
  EXPECT_TRUE(parser.GetBool("c", false));
  EXPECT_TRUE(parser.Validate());
}

TEST(ToolFlagsTest, MalformedIntegerFailsParser) {
  Args args({"--n", "12x"});
  ArgParser parser(args.argc(), args.argv());
  EXPECT_EQ(parser.GetInt("n", 5), 5);  // default returned on failure
  EXPECT_TRUE(parser.failed());
  EXPECT_FALSE(parser.Validate());
}

TEST(ToolFlagsTest, MalformedDoubleFailsParser) {
  Args args({"--rate=fast"});
  ArgParser parser(args.argc(), args.argv());
  parser.GetDouble("rate", 1.0);
  EXPECT_TRUE(parser.failed());
}

TEST(ToolFlagsTest, UnknownFlagFailsValidation) {
  Args args({"--typo-flag", "3"});
  ArgParser parser(args.argc(), args.argv());
  parser.GetInt("real-flag", 0);
  EXPECT_FALSE(parser.Validate());
}

TEST(ToolFlagsTest, PositionalArgumentsCollected) {
  Args args({"file1.bin", "--k", "5", "file2.bin"});
  ArgParser parser(args.argc(), args.argv());
  EXPECT_EQ(parser.GetInt("k", 0), 5);
  ASSERT_EQ(parser.positional().size(), 2u);
  EXPECT_EQ(parser.positional()[0], "file1.bin");
  EXPECT_EQ(parser.positional()[1], "file2.bin");
  EXPECT_TRUE(parser.Validate());
}

TEST(ToolFlagsTest, NegativeNumbersParse) {
  // A negative value after a flag must bind as the value, not as a new
  // flag (it does not start with "--").
  Args args({"--shift", "-3"});
  ArgParser parser(args.argc(), args.argv());
  EXPECT_EQ(parser.GetInt("shift", 0), -3);
  EXPECT_TRUE(parser.Validate());
}

TEST(ToolFlagsTest, SplitCommaList) {
  EXPECT_EQ(SplitCommaList("a,b,c"),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(SplitCommaList("single"),
            (std::vector<std::string>{"single"}));
  EXPECT_TRUE(SplitCommaList("").empty());
  EXPECT_EQ(SplitCommaList("x,"), (std::vector<std::string>{"x", ""}));
}

}  // namespace
}  // namespace resinfer::tools

#include "util/aligned_buffer.h"

#include <cstdint>

#include <gtest/gtest.h>

namespace resinfer {
namespace {

TEST(AlignedBufferTest, AllocationIsCacheLineAligned) {
  for (std::size_t count : {1u, 7u, 64u, 1000u}) {
    AlignedBuffer<float> buf(count);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(buf.data()) % kCacheLineBytes, 0u);
    EXPECT_EQ(buf.size(), count);
  }
}

TEST(AlignedBufferTest, ZeroInitialized) {
  AlignedBuffer<float> buf(128);
  for (std::size_t i = 0; i < buf.size(); ++i) EXPECT_EQ(buf[i], 0.0f);
}

TEST(AlignedBufferTest, MoveTransfersOwnership) {
  AlignedBuffer<int> a(10);
  a[3] = 42;
  int* ptr = a.data();
  AlignedBuffer<int> b(std::move(a));
  EXPECT_EQ(b.data(), ptr);
  EXPECT_EQ(b[3], 42);
  EXPECT_EQ(a.data(), nullptr);
  EXPECT_TRUE(a.empty());
}

TEST(AlignedBufferTest, CloneIsDeepCopy) {
  AlignedBuffer<float> a(16);
  a[0] = 1.5f;
  AlignedBuffer<float> b = a.Clone();
  EXPECT_NE(a.data(), b.data());
  EXPECT_EQ(b[0], 1.5f);
  b[0] = 2.0f;
  EXPECT_EQ(a[0], 1.5f);
}

TEST(AlignedBufferTest, EmptyBuffer) {
  AlignedBuffer<float> buf;
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.data(), nullptr);
  buf.Resize(0);
  EXPECT_TRUE(buf.empty());
}

}  // namespace
}  // namespace resinfer

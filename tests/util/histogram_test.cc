#include "util/histogram.h"

#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace resinfer {
namespace {

TEST(HistogramTest, EmptyHistogramIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.Percentile(0.5), 0.0);
}

TEST(HistogramTest, SingleValueStats) {
  Histogram h;
  h.Add(0.125);
  EXPECT_EQ(h.count(), 1);
  EXPECT_DOUBLE_EQ(h.sum(), 0.125);
  EXPECT_DOUBLE_EQ(h.min(), 0.125);
  EXPECT_DOUBLE_EQ(h.max(), 0.125);
  // The only sample defines every percentile (clamped to [min, max]).
  EXPECT_DOUBLE_EQ(h.Percentile(0.0), 0.125);
  EXPECT_DOUBLE_EQ(h.Percentile(1.0), 0.125);
}

TEST(HistogramTest, MinMaxMeanExact) {
  Histogram h;
  for (double v : {3.0, 1.0, 4.0, 1.0, 5.0}) h.Add(v);
  EXPECT_EQ(h.count(), 5);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 5.0);
  EXPECT_DOUBLE_EQ(h.mean(), 14.0 / 5.0);
}

TEST(HistogramTest, PercentilesWithinBucketResolution) {
  // Uniform samples over [1, 2]: percentile estimates must land within the
  // ~4.2% geometric bucket width of the true quantile.
  Histogram h;
  Rng rng(5);
  for (int i = 0; i < 20000; ++i) {
    h.Add(1.0 + rng.Uniform());
  }
  EXPECT_NEAR(h.Percentile(0.5), 1.5, 0.10);
  EXPECT_NEAR(h.Percentile(0.9), 1.9, 0.12);
  EXPECT_NEAR(h.Percentile(0.99), 1.99, 0.12);
}

TEST(HistogramTest, PercentileIsMonotoneInP) {
  Histogram h;
  Rng rng(9);
  for (int i = 0; i < 5000; ++i) h.Add(rng.Uniform() * 1e-3);
  double previous = 0.0;
  for (double p : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    const double value = h.Percentile(p);
    EXPECT_GE(value, previous) << "p=" << p;
    previous = value;
  }
}

TEST(HistogramTest, TinyAndHugeValuesLandInEndBuckets) {
  Histogram h;
  h.Add(0.0);
  h.Add(1e-12);  // below the first bucket upper bound
  h.Add(1e30);   // beyond the last bucket
  EXPECT_EQ(h.count(), 3);
  EXPECT_DOUBLE_EQ(h.max(), 1e30);
  EXPECT_LE(h.Percentile(0.01), 1e-9);
}

TEST(HistogramTest, MergeMatchesCombinedInsertion) {
  Histogram a;
  Histogram b;
  Histogram combined;
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform() * 0.01;
    if (i % 2 == 0) {
      a.Add(v);
    } else {
      b.Add(v);
    }
    combined.Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), combined.count());
  // Sums differ only by float summation order.
  EXPECT_NEAR(a.sum(), combined.sum(), 1e-9 * combined.sum());
  EXPECT_DOUBLE_EQ(a.min(), combined.min());
  EXPECT_DOUBLE_EQ(a.max(), combined.max());
  for (double p : {0.5, 0.9, 0.99}) {
    EXPECT_DOUBLE_EQ(a.Percentile(p), combined.Percentile(p));
  }
}

TEST(HistogramTest, MergeIntoEmptyCopiesStats) {
  Histogram a;
  Histogram b;
  b.Add(2.0);
  b.Add(4.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2);
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 4.0);
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.Add(1.0);
  h.Reset();
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.Percentile(0.9), 0.0);
}

TEST(HistogramTest, SummaryMentionsCount) {
  Histogram h;
  h.Add(1.0);
  h.Add(2.0);
  const std::string summary = h.Summary();
  EXPECT_NE(summary.find("count=2"), std::string::npos);
  EXPECT_NE(summary.find("p99"), std::string::npos);
}

}  // namespace
}  // namespace resinfer

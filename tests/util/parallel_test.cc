#include "util/parallel.h"

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace resinfer {
namespace {

TEST(ParallelTest, ParallelForCoversRangeExactlyOnce) {
  constexpr int64_t kN = 10000;
  std::vector<std::atomic<int>> touched(kN);
  ParallelFor(kN, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) touched[i].fetch_add(1);
  });
  for (int64_t i = 0; i < kN; ++i) EXPECT_EQ(touched[i].load(), 1);
}

TEST(ParallelTest, ParallelForEachCoversRangeExactlyOnce) {
  constexpr int64_t kN = 5000;
  std::vector<std::atomic<int>> touched(kN);
  ParallelForEach(kN, [&](int64_t i, int /*thread*/) {
    touched[i].fetch_add(1);
  });
  for (int64_t i = 0; i < kN; ++i) EXPECT_EQ(touched[i].load(), 1);
}

TEST(ParallelTest, EmptyAndSmallRanges) {
  int calls = 0;
  ParallelFor(0, [&](int64_t, int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  ParallelFor(1, [&](int64_t begin, int64_t end) {
    EXPECT_EQ(begin, 0);
    EXPECT_EQ(end, 1);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelTest, ThreadCountOverride) {
  int saved = DefaultThreadCount();
  SetDefaultThreadCount(1);
  EXPECT_EQ(DefaultThreadCount(), 1);
  // With one thread the callback thread_id is always 0.
  ParallelForEach(2000, [&](int64_t, int thread_id) {
    EXPECT_EQ(thread_id, 0);
  });
  SetDefaultThreadCount(0);  // restore auto
  EXPECT_GE(DefaultThreadCount(), 1);
  SetDefaultThreadCount(saved == DefaultThreadCount() ? 0 : 0);
}

TEST(ParallelTest, EnvThreadOverride) {
  // RESINFER_THREADS mirrors RESINFER_SIMD_LEVEL: a run-without-recompiling
  // override, consulted when no explicit SetDefaultThreadCount is active.
  SetDefaultThreadCount(0);
  ::setenv("RESINFER_THREADS", "3", 1);
  EXPECT_EQ(DefaultThreadCount(), 3);
  // Invalid values are ignored (hardware fallback, >= 1).
  ::setenv("RESINFER_THREADS", "zero", 1);
  EXPECT_GE(DefaultThreadCount(), 1);
  ::setenv("RESINFER_THREADS", "-2", 1);
  EXPECT_GE(DefaultThreadCount(), 1);
  // An explicit SetDefaultThreadCount beats the environment.
  ::setenv("RESINFER_THREADS", "3", 1);
  SetDefaultThreadCount(2);
  EXPECT_EQ(DefaultThreadCount(), 2);
  SetDefaultThreadCount(0);
  ::unsetenv("RESINFER_THREADS");
}

TEST(ParallelTest, ResolveThreadCountClampsNonPositiveToDefault) {
  SetDefaultThreadCount(5);
  EXPECT_EQ(ResolveThreadCount(2), 2);
  EXPECT_EQ(ResolveThreadCount(0), 5);
  // Accidental negatives (e.g. an uninitialized BatchOptions::num_threads
  // sentinel) clamp to the default instead of flowing into thread math.
  EXPECT_EQ(ResolveThreadCount(-1), 5);
  EXPECT_EQ(ResolveThreadCount(-100), 5);
  SetDefaultThreadCount(0);
}

TEST(ParallelTest, ResultsMatchSequential) {
  constexpr int64_t kN = 100000;
  std::vector<double> values(kN);
  for (int64_t i = 0; i < kN; ++i) values[i] = 0.5 * i;
  std::vector<double> out(kN);
  ParallelFor(kN, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) out[i] = values[i] * 2.0;
  });
  for (int64_t i = 0; i < kN; i += 997) EXPECT_DOUBLE_EQ(out[i], values[i] * 2);
}

}  // namespace
}  // namespace resinfer

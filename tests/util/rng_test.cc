#include "util/rng.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

namespace resinfer {
namespace {

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
    EXPECT_DOUBLE_EQ(a.Gaussian(), b.Gaussian());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.Uniform() == b.Uniform()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, UniformRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.Uniform(-2.0, 3.0);
    EXPECT_GE(u, -2.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(RngTest, UniformIntRange) {
  Rng rng(10);
  std::set<uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    uint64_t v = rng.UniformInt(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(RngTest, GaussianMoments) {
  Rng rng(11);
  double sum = 0.0, sum_sq = 0.0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    double g = rng.Gaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / kN, 1.0, 0.03);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(12);
  for (int64_t n : {10, 100, 5000}) {
    for (int64_t k : {1L, n / 2, n}) {
      auto sample = rng.SampleWithoutReplacement(n, k);
      ASSERT_EQ(static_cast<int64_t>(sample.size()), k);
      std::set<int64_t> unique(sample.begin(), sample.end());
      EXPECT_EQ(static_cast<int64_t>(unique.size()), k);
      for (int64_t v : sample) {
        EXPECT_GE(v, 0);
        EXPECT_LT(v, n);
      }
    }
  }
}

TEST(RngTest, SampleWithoutReplacementSparseCoverage) {
  // The Floyd path (k << n) should still cover the range roughly uniformly.
  Rng rng(13);
  std::vector<int> hits(100, 0);
  for (int rep = 0; rep < 2000; ++rep) {
    for (int64_t v : rng.SampleWithoutReplacement(100, 5)) ++hits[v];
  }
  // Each index expected ~100 times; allow generous slack.
  for (int h : hits) {
    EXPECT_GT(h, 40);
    EXPECT_LT(h, 200);
  }
}

TEST(RngTest, SampleZero) {
  Rng rng(14);
  EXPECT_TRUE(rng.SampleWithoutReplacement(10, 0).empty());
}

}  // namespace
}  // namespace resinfer

#include "util/status.h"

#include <memory>
#include <string>

#include <gtest/gtest.h>

namespace resinfer::util {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_TRUE(s.message().empty());
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_EQ(s, Status::Ok());
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  struct Case {
    Status status;
    StatusCode code;
  };
  const Case cases[] = {
      {Status::InvalidArgument("bad arg"), StatusCode::kInvalidArgument},
      {Status::NotFound("no file"), StatusCode::kNotFound},
      {Status::Corruption("bit rot"), StatusCode::kCorruption},
      {Status::IOError("disk full"), StatusCode::kIOError},
      {Status::FailedPrecondition("not yet"),
       StatusCode::kFailedPrecondition},
      {Status::Internal("oops"), StatusCode::kInternal},
  };
  for (const Case& c : cases) {
    EXPECT_FALSE(c.status.ok());
    EXPECT_EQ(c.status.code(), c.code);
    EXPECT_FALSE(c.status.message().empty());
  }
}

TEST(StatusTest, ToStringNamesCodeAndMessage) {
  Status s = Status::Corruption("ivf.bin: section 'buckets' mismatch");
  EXPECT_NE(s.ToString().find(StatusCodeName(StatusCode::kCorruption)),
            std::string::npos);
  EXPECT_NE(s.ToString().find("section 'buckets'"), std::string::npos);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_NE(Status::NotFound("x"), Status::NotFound("y"));
  EXPECT_NE(Status::NotFound("x"), Status::Corruption("x"));
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto fails = [] { return Status::IOError("short write"); };
  auto wrapper = [&]() -> Status {
    RESINFER_RETURN_IF_ERROR(fails());
    return Status::Internal("unreachable");
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kIOError);

  auto succeeds = [] { return Status::Ok(); };
  auto through = [&]() -> Status {
    RESINFER_RETURN_IF_ERROR(succeeds());
    return Status::Internal("reached");
  };
  EXPECT_EQ(through().code(), StatusCode::kInternal);
}

TEST(StatusOrTest, HoldsValueWhenOk) {
  StatusOr<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
}

TEST(StatusOrTest, HoldsStatusWhenNotOk) {
  StatusOr<std::string> result(Status::NotFound("gone"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOnlyValueWorks) {
  StatusOr<std::unique_ptr<int>> result(std::make_unique<int>(7));
  ASSERT_TRUE(result.ok());
  std::unique_ptr<int> taken = std::move(result).value();
  EXPECT_EQ(*taken, 7);
}

}  // namespace
}  // namespace resinfer::util

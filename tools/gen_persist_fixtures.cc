// Writes the tiny cross-version IVF fixture files that
// tests/persist/persist_fixture_test.cc loads from tests/persist/testdata/.
//
// The fixtures are checked into git so that CI catches on-disk format
// breaks: if a loader change stops understanding yesterday's bytes, the
// fixture test fails in CI instead of at load time in production. Re-run
// this tool ONLY when introducing a new on-disk version (add a new fixture,
// never rewrite the old ones — superseded writers are replicated by hand
// below so the old bytes stay frozen):
//
//   ./build/gen_persist_fixtures tests/persist/testdata
//
// The index content is fully hand-specified (no k-means, no RNG), so the
// generator is deterministic across hosts and library changes; the test
// hard-codes the same constants.
#include <cstdio>
#include <string>
#include <vector>

#include "index/ivf_index.h"
#include "linalg/matrix.h"
#include "persist/persist.h"
#include "quant/code_store.h"
#include "util/binary_io.h"

namespace resinfer {
namespace {

constexpr char kIvfMagic[8] = {'R', 'I', 'I', 'V', 'F', 'I', 'X', '1'};

// The record bytes as a count-prefixed vector, as the pre-v6 code sections
// stored them.
std::vector<uint8_t> CodeBytes(const quant::CodeStore& codes) {
  return std::vector<uint8_t>(codes.data(),
                              codes.data() + codes.data_bytes());
}

// The fixture index: 12 points in 4-d, 3 buckets. Keep in sync with
// persist_fixture_test.cc.
constexpr int64_t kSize = 12;
constexpr int64_t kDim = 4;
constexpr int kClusters = 3;

linalg::Matrix FixtureCentroids() {
  linalg::Matrix centroids(kClusters, kDim);
  for (int64_t c = 0; c < kClusters; ++c) {
    for (int64_t j = 0; j < kDim; ++j) {
      centroids.At(c, j) = static_cast<float>(c) + 0.25f * static_cast<float>(j);
    }
  }
  return centroids;
}

const std::vector<int64_t>& FixtureOffsets() {
  static const std::vector<int64_t> offsets = {0, 4, 9, 12};
  return offsets;
}

const std::vector<int64_t>& FixtureIds() {
  static const std::vector<int64_t> ids = {0, 3, 6, 9,  1, 4,
                                           7, 10, 11, 2, 5, 8};
  return ids;
}

// Id-indexed store: point i's code bytes are {i, 2i}, its sidecar i + 0.5.
quant::CodeStore FixtureCodes() {
  quant::CodeStore store(kSize, /*code_size=*/2, /*num_sidecars=*/1,
                         "fixture/cs2/sc1/n12");
  for (int64_t i = 0; i < kSize; ++i) {
    const uint8_t code[2] = {static_cast<uint8_t>(i),
                             static_cast<uint8_t>(2 * i)};
    store.SetCode(i, code);
    store.SetSidecar(i, 0, static_cast<float>(i) + 0.5f);
  }
  return store;
}

// Packed 4-bit store (the v4 fixture): point i carries three nibble codes
// {i, 2i, 3i} (mod 16) packed into two bytes (pad nibble zero), sidecar
// i + 0.25.
quant::CodeStore FixturePackedCodes() {
  quant::CodeStore store(kSize, /*code_size=*/2, /*num_sidecars=*/1,
                         "fixture/cs2/sc1/n12/pk4",
                         quant::CodePacking::kPacked4);
  for (int64_t i = 0; i < kSize; ++i) {
    const uint8_t nibbles[3] = {static_cast<uint8_t>(i & 0xf),
                                static_cast<uint8_t>((2 * i) & 0xf),
                                static_cast<uint8_t>((3 * i) & 0xf)};
    uint8_t code[2];
    quant::PackCodes4(nibbles, 3, code);
    store.SetCode(i, code);
    store.SetSidecar(i, 0, static_cast<float>(i) + 0.25f);
  }
  return store;
}

void WriteCommonPrefix(BinaryWriter& writer, uint32_t version,
                       const linalg::Matrix& centroids) {
  WriteHeader(writer, kIvfMagic, version);
  writer.Write<int64_t>(kSize);
  writer.Write(centroids.rows());
  writer.Write(centroids.cols());
  writer.WriteFloats(centroids.data(), centroids.size());
  writer.Write<int32_t>(kClusters);
}

bool WriteV1(const std::string& path, const linalg::Matrix& centroids) {
  BinaryWriter writer(path);
  WriteCommonPrefix(writer, 1, centroids);
  const auto& offsets = FixtureOffsets();
  const auto& ids = FixtureIds();
  for (int b = 0; b < kClusters; ++b) {
    std::vector<int64_t> bucket(ids.begin() + offsets[b],
                                ids.begin() + offsets[b + 1]);
    writer.WriteVector(bucket);
  }
  return writer.Close();
}

bool WriteV2(const std::string& path, const linalg::Matrix& centroids) {
  BinaryWriter writer(path);
  WriteCommonPrefix(writer, 2, centroids);
  writer.WriteVector(FixtureOffsets());
  writer.WriteVector(FixtureIds());
  return writer.Close();
}

bool WriteV3(const std::string& path, const linalg::Matrix& centroids) {
  // The v3 bytes are FROZEN (the library now writes v4): replicate the v3
  // layout by hand — code section without the packing byte.
  const quant::CodeStore codes = FixtureCodes().PermutedBy(FixtureIds());
  BinaryWriter writer(path);
  WriteCommonPrefix(writer, 3, centroids);
  writer.WriteVector(FixtureOffsets());
  writer.WriteVector(FixtureIds());
  writer.Write<uint8_t>(1);
  writer.Write<int64_t>(codes.code_size());
  writer.Write<int32_t>(codes.num_sidecars());
  writer.WriteString(codes.tag());
  writer.WriteVector(CodeBytes(codes));
  return writer.Close();
}

bool WriteV4(const std::string& path, const linalg::Matrix& centroids) {
  // The v4 bytes are FROZEN (the library now writes the checksummed v5):
  // replicate the v4 layout by hand — v3 plus the packing byte, no section
  // envelope, no footer.
  const quant::CodeStore codes = FixturePackedCodes().PermutedBy(FixtureIds());
  BinaryWriter writer(path);
  WriteCommonPrefix(writer, 4, centroids);
  writer.WriteVector(FixtureOffsets());
  writer.WriteVector(FixtureIds());
  writer.Write<uint8_t>(1);
  writer.Write<int64_t>(codes.code_size());
  writer.Write<int32_t>(codes.num_sidecars());
  writer.Write<uint8_t>(static_cast<uint8_t>(codes.packing()));
  writer.WriteString(codes.tag());
  writer.WriteVector(CodeBytes(codes));
  return writer.Close();
}

// The v5 bytes are FROZEN (the library now writes the storage-aligned v6):
// replicate the v5 layout by hand — the checksummed envelope around the v4
// payload, code records as a count-prefixed vector, no alignment pad.
bool WriteV5(const std::string& path, quant::CodeStore source) {
  const quant::CodeStore codes = source.PermutedBy(FixtureIds());
  const linalg::Matrix centroids = FixtureCentroids();
  BinaryWriter writer(path);
  WriteHeader(writer, kIvfMagic, 5);
  writer.BeginSection("meta");
  writer.Write<int64_t>(kSize);
  writer.EndSection();
  writer.BeginSection("centroids");
  writer.Write(centroids.rows());
  writer.Write(centroids.cols());
  writer.WriteFloats(centroids.data(), centroids.size());
  writer.EndSection();
  writer.BeginSection("buckets");
  writer.Write<int32_t>(kClusters);
  writer.WriteVector(FixtureOffsets());
  writer.WriteVector(FixtureIds());
  writer.EndSection();
  writer.BeginSection("codes");
  writer.Write<uint8_t>(1);
  writer.Write<int64_t>(codes.code_size());
  writer.Write<int32_t>(codes.num_sidecars());
  writer.Write<uint8_t>(static_cast<uint8_t>(codes.packing()));
  writer.WriteString(codes.tag());
  writer.WriteVector(CodeBytes(codes));
  writer.EndSection();
  writer.WriteChecksumFooter();
  return writer.Close();
}

// The current writer IS the v6 format; route through SaveIvf so the
// fixtures track exactly what the library writes today. One fixture per
// code layout so both ADC paths keep a cross-version guarantee.
bool WriteV6(const std::string& path, quant::CodeStore codes) {
  index::IvfIndex ivf = index::IvfIndex::FromCsr(
      kSize, FixtureCentroids(), FixtureOffsets(), FixtureIds());
  ivf.AttachCodes(std::move(codes));
  util::Status status = persist::SaveIvf(path, ivf);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return false;
  }
  return true;
}

}  // namespace
}  // namespace resinfer

int main(int argc, char** argv) {
  const std::string dir = argc > 1 ? argv[1] : "tests/persist/testdata";
  const resinfer::linalg::Matrix centroids = resinfer::FixtureCentroids();
  if (!resinfer::WriteV1(dir + "/ivf_v1.bin", centroids) ||
      !resinfer::WriteV2(dir + "/ivf_v2.bin", centroids) ||
      !resinfer::WriteV3(dir + "/ivf_v3.bin", centroids) ||
      !resinfer::WriteV4(dir + "/ivf_v4.bin", centroids) ||
      !resinfer::WriteV5(dir + "/ivf_v5.bin", resinfer::FixtureCodes()) ||
      !resinfer::WriteV5(dir + "/ivf_v5_packed.bin",
                         resinfer::FixturePackedCodes()) ||
      !resinfer::WriteV6(dir + "/ivf_v6.bin", resinfer::FixtureCodes()) ||
      !resinfer::WriteV6(dir + "/ivf_v6_packed.bin",
                         resinfer::FixturePackedCodes())) {
    std::fprintf(stderr, "failed writing fixtures to %s\n", dir.c_str());
    return 1;
  }
  std::printf(
      "wrote ivf_v1.bin ivf_v2.bin ivf_v3.bin ivf_v4.bin ivf_v5.bin "
      "ivf_v5_packed.bin ivf_v6.bin ivf_v6_packed.bin to %s\n",
      dir.c_str());
  return 0;
}

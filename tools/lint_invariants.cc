// Repo-invariant linter CLI. See lint_invariants_lib.h for the checks.
//
// Usage:
//   lint_invariants --root=/path/to/repo [--baseline=tools/lint_baseline.txt]
//   lint_invariants --root=. --write-baseline
//
// Exit status 0 when the tree is clean, 1 on any violation (CI gates on
// this), 2 on usage/IO errors. --write-baseline regenerates the persist
// baseline manifest from the current tree; review that diff like any other
// — version floors may only go up and existing fixture lines never change.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "lint_invariants_lib.h"

namespace {

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *out = arg + len + 1;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string baseline;
  bool write_baseline = false;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (ParseFlag(argv[i], "--root", &value)) {
      root = value;
    } else if (ParseFlag(argv[i], "--baseline", &value)) {
      baseline = value;
    } else if (std::strcmp(argv[i], "--write-baseline") == 0) {
      write_baseline = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--root=DIR] [--baseline=FILE] "
                   "[--write-baseline]\n",
                   argv[0]);
      return 2;
    }
  }

  const std::filesystem::path root_path(root);
  const std::filesystem::path baseline_path =
      baseline.empty() ? root_path / "tools" / "lint_baseline.txt"
                       : std::filesystem::path(baseline);

  if (write_baseline) {
    const std::string manifest = resinfer::lint::GenerateBaseline(root_path);
    std::ofstream out(baseline_path, std::ios::binary | std::ios::trunc);
    if (!out || !(out << manifest)) {
      std::fprintf(stderr, "lint_invariants: cannot write %s\n",
                   baseline_path.string().c_str());
      return 2;
    }
    std::printf("lint_invariants: wrote %s\n", baseline_path.string().c_str());
    return 0;
  }

  const std::vector<resinfer::lint::Violation> violations =
      resinfer::lint::RunAllChecks(root_path, baseline_path);
  for (const resinfer::lint::Violation& v : violations) {
    std::fprintf(stderr, "%s\n", v.ToString().c_str());
  }
  if (!violations.empty()) {
    std::fprintf(stderr, "lint_invariants: %zu violation%s\n",
                 violations.size(), violations.size() == 1 ? "" : "s");
    return 1;
  }
  std::printf("lint_invariants: clean\n");
  return 0;
}

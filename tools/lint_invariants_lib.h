// Repo-invariant linter (library half; the CLI lives in lint_invariants.cc).
//
// Enforces invariants no off-the-shelf tool knows about, as part of the
// static-analysis CI job. Deliberately libclang-free: every check works on
// raw source text with comment-stripping and light tokenization, so the
// linter builds everywhere the library builds and runs in milliseconds.
//
// Checks:
//   1. KernelTable completeness — src/simd/dispatch.cc must define the
//      kScalarTable / kAvx2Table / kAvx512Table initializers, each
//      populating every KernelTable field (aggregate initialization
//      silently null-fills missing trailing entries, which would make a
//      whole SimdLevel dispatch through a null pointer; the compiler never
//      warns).
//   2. Persist format discipline — format-version constants in
//      src/persist/persist.cc may only ever increase relative to the
//      checked-in baseline (tools/lint_baseline.txt), and the frozen
//      cross-version fixture files under tests/persist/testdata must be
//      byte-identical to the baseline hashes. A legitimate version bump
//      regenerates the baseline with --write-baseline; the diff then shows
//      exactly which floor moved, and it can only move up.
//   3. Concurrency confinement — no naked std::mutex / std::thread /
//      std::condition_variable et al. outside src/serve + src/util.
//      Library code uses the annotated util::Mutex / util::CondVar
//      wrappers (util/thread_annotations.h) so clang Thread Safety
//      Analysis can see every lock.
//   4. Status-only load path — no RESINFER_CHECK / RESINFER_DCHECK in the
//      untrusted-input loaders (src/persist/, src/data/vec_io.cc): bad
//      bytes must surface as a recoverable util::Status, never an abort
//      (docs/persistence.md, "CHECK vs Status"). A deliberate internal
//      invariant may opt out with `lint: allow-check` in a comment on the
//      same line.
#ifndef RESINFER_TOOLS_LINT_INVARIANTS_LIB_H_
#define RESINFER_TOOLS_LINT_INVARIANTS_LIB_H_

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace resinfer::lint {

struct Violation {
  std::string file;  // repo-relative where possible
  int line = 0;      // 1-based; 0 when the finding is file-scoped
  std::string rule;  // "kernel-table", "persist-version", "frozen-fixture",
                     // "naked-concurrency", "check-on-load-path", "lint-io"
  std::string message;

  std::string ToString() const {
    std::ostringstream out;
    out << file;
    if (line > 0) out << ":" << line;
    out << ": [" << rule << "] " << message;
    return out.str();
  }
};

// ---------------------------------------------------------------------------
// Small helpers
// ---------------------------------------------------------------------------

// Replaces // and /* */ comment bodies (and string/char literal bodies)
// with spaces, preserving newlines so line numbers survive. Light-duty:
// no raw strings, no trigraphs — fine for this codebase's style.
inline std::string StripCommentsAndStrings(const std::string& src) {
  std::string out = src;
  enum class State { kCode, kLine, kBlock, kString, kChar } state = State::kCode;
  for (std::size_t i = 0; i < out.size(); ++i) {
    const char c = out[i];
    const char next = i + 1 < out.size() ? out[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLine;
          out[i] = ' ';
        } else if (c == '/' && next == '*') {
          state = State::kBlock;
          out[i] = ' ';
        } else if (c == '"') {
          state = State::kString;
        } else if (c == '\'') {
          state = State::kChar;
        }
        break;
      case State::kLine:
        if (c == '\n') {
          state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kBlock:
        if (c == '*' && next == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
        if (c == '\\') {
          if (c != '\n') out[i] = ' ';
          if (next != '\0' && next != '\n') out[++i] = ' ';
        } else if (c == '"') {
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          if (c != '\n') out[i] = ' ';
          if (next != '\0' && next != '\n') out[++i] = ' ';
        } else if (c == '\'') {
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

inline int LineOfOffset(const std::string& text, std::size_t offset) {
  int line = 1;
  for (std::size_t i = 0; i < offset && i < text.size(); ++i) {
    if (text[i] == '\n') ++line;
  }
  return line;
}

inline bool ReadFileToString(const std::filesystem::path& path,
                             std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

// FNV-1a 64-bit, enough to pin a frozen fixture byte-for-byte in a review
// diff (accidental edits, not adversaries, are the threat model).
inline uint64_t Fnv1a64(const std::string& bytes) {
  uint64_t hash = 1469598103934665603ull;
  for (unsigned char c : bytes) {
    hash ^= static_cast<uint64_t>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

// ---------------------------------------------------------------------------
// Check 1: KernelTable completeness
// ---------------------------------------------------------------------------

// Returns the offset just past the matching close brace for the open brace
// at `open`, or std::string::npos.
inline std::size_t MatchBrace(const std::string& text, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < text.size(); ++i) {
    if (text[i] == '{') ++depth;
    if (text[i] == '}') {
      if (--depth == 0) return i;
    }
  }
  return std::string::npos;
}

// Counts the top-level field declarations of a struct body (one `;` each)
// and the top-level entries of a brace initializer (comma-separated).
inline int CountTopLevelSemicolons(const std::string& body) {
  int depth = 0;
  int count = 0;
  for (char c : body) {
    if (c == '(' || c == '{' || c == '[') ++depth;
    if (c == ')' || c == '}' || c == ']') --depth;
    if (c == ';' && depth == 0) ++count;
  }
  return count;
}

inline std::vector<std::string> SplitTopLevelEntries(const std::string& body) {
  std::vector<std::string> entries;
  std::string current;
  int depth = 0;
  for (char c : body) {
    if (c == '(' || c == '{' || c == '[') ++depth;
    if (c == ')' || c == '}' || c == ']') --depth;
    if (c == ',' && depth == 0) {
      entries.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  entries.push_back(current);
  // Trim whitespace; drop empty tails (trailing comma).
  std::vector<std::string> cleaned;
  for (std::string& e : entries) {
    std::size_t b = e.find_first_not_of(" \t\n\r");
    if (b == std::string::npos) continue;
    std::size_t t = e.find_last_not_of(" \t\n\r");
    cleaned.push_back(e.substr(b, t - b + 1));
  }
  return cleaned;
}

// `dispatch_source` is the contents of src/simd/dispatch.cc; `file` is the
// name used in reports.
inline std::vector<Violation> CheckKernelTableSource(
    const std::string& dispatch_source, const std::string& file) {
  std::vector<Violation> violations;
  const std::string code = StripCommentsAndStrings(dispatch_source);

  const std::size_t struct_pos = code.find("struct KernelTable");
  if (struct_pos == std::string::npos) {
    violations.push_back({file, 0, "kernel-table",
                          "struct KernelTable not found"});
    return violations;
  }
  const std::size_t struct_open = code.find('{', struct_pos);
  const std::size_t struct_close =
      struct_open == std::string::npos ? std::string::npos
                                       : MatchBrace(code, struct_open);
  if (struct_close == std::string::npos) {
    violations.push_back({file, LineOfOffset(code, struct_pos), "kernel-table",
                          "unbalanced braces in struct KernelTable"});
    return violations;
  }
  const std::string struct_body =
      code.substr(struct_open + 1, struct_close - struct_open - 1);
  const int num_fields = CountTopLevelSemicolons(struct_body);
  if (num_fields <= 1) {
    violations.push_back({file, LineOfOffset(code, struct_pos), "kernel-table",
                          "struct KernelTable has no kernel fields"});
    return violations;
  }

  // Every SimdLevel must have a fully populated table. The names are the
  // repo convention; adding a level means adding it here (and a fixture
  // test proving the linter sees it).
  const char* kRequiredTables[] = {"kScalarTable", "kAvx2Table",
                                   "kAvx512Table"};
  for (const char* table : kRequiredTables) {
    const std::string decl = std::string("KernelTable ") + table;
    const std::size_t decl_pos = code.find(decl);
    if (decl_pos == std::string::npos) {
      violations.push_back(
          {file, 0, "kernel-table",
           std::string(table) + " initializer not found (every SimdLevel "
                                "must populate the full KernelTable)"});
      continue;
    }
    const std::size_t init_open = code.find('{', decl_pos);
    const std::size_t init_close =
        init_open == std::string::npos ? std::string::npos
                                       : MatchBrace(code, init_open);
    if (init_close == std::string::npos) {
      violations.push_back({file, LineOfOffset(code, decl_pos), "kernel-table",
                            std::string(table) + ": unbalanced initializer"});
      continue;
    }
    const std::vector<std::string> entries = SplitTopLevelEntries(
        code.substr(init_open + 1, init_close - init_open - 1));
    if (static_cast<int>(entries.size()) != num_fields) {
      std::ostringstream msg;
      msg << table << " populates " << entries.size() << " of " << num_fields
          << " KernelTable fields — aggregate init would null-fill the "
             "missing kernels and dispatch would call a null pointer";
      violations.push_back(
          {file, LineOfOffset(code, decl_pos), "kernel-table", msg.str()});
    }
    for (const std::string& entry : entries) {
      if (entry == "nullptr" || entry == "0" || entry == "NULL") {
        violations.push_back({file, LineOfOffset(code, decl_pos),
                              "kernel-table",
                              std::string(table) + ": explicit null kernel "
                                                   "entry"});
      }
    }
  }
  return violations;
}

inline std::vector<Violation> CheckKernelTable(
    const std::filesystem::path& root) {
  const std::filesystem::path path = root / "src" / "simd" / "dispatch.cc";
  std::string source;
  if (!ReadFileToString(path, &source)) {
    return {{path.string(), 0, "lint-io", "cannot read dispatch source"}};
  }
  return CheckKernelTableSource(source, "src/simd/dispatch.cc");
}

// ---------------------------------------------------------------------------
// Check 2: persist version floors + frozen fixtures (baseline manifest)
// ---------------------------------------------------------------------------

struct Baseline {
  // Constant name -> minimum allowed value.
  std::map<std::string, uint32_t> version_floors;
  struct FixtureEntry {
    uint64_t size = 0;
    uint64_t hash = 0;
  };
  // Repo-relative fixture path -> frozen size/hash.
  std::map<std::string, FixtureEntry> fixtures;
};

// Parses `constexpr uint32_t kFooVersionBar = N;` style constants. Any
// constant whose name contains "Version" counts as a format-version floor.
inline std::map<std::string, uint32_t> ParseVersionConstants(
    const std::string& source) {
  std::map<std::string, uint32_t> versions;
  const std::string code = StripCommentsAndStrings(source);
  static const char kPrefix[] = "constexpr uint32_t ";
  std::size_t pos = 0;
  while ((pos = code.find(kPrefix, pos)) != std::string::npos) {
    std::size_t p = pos + sizeof(kPrefix) - 1;
    std::string name;
    while (p < code.size() &&
           (std::isalnum(static_cast<unsigned char>(code[p])) ||
            code[p] == '_')) {
      name.push_back(code[p++]);
    }
    while (p < code.size() && (code[p] == ' ' || code[p] == '=')) ++p;
    std::string digits;
    while (p < code.size() &&
           std::isdigit(static_cast<unsigned char>(code[p]))) {
      digits.push_back(code[p++]);
    }
    if (!name.empty() && !digits.empty() &&
        name.find("Version") != std::string::npos) {
      versions[name] = static_cast<uint32_t>(std::stoul(digits));
    }
    pos = p;
  }
  return versions;
}

inline bool ParseBaseline(const std::string& text, Baseline* out,
                          std::string* error) {
  std::istringstream in(text);
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string kind;
    fields >> kind;
    if (kind == "version") {
      std::string name;
      uint32_t value = 0;
      if (!(fields >> name >> value)) {
        *error = "baseline line " + std::to_string(line_number) +
                 ": expected `version <name> <value>`";
        return false;
      }
      out->version_floors[name] = value;
    } else if (kind == "fixture") {
      std::string path;
      uint64_t size = 0;
      std::string hash_hex;
      if (!(fields >> path >> size >> hash_hex)) {
        *error = "baseline line " + std::to_string(line_number) +
                 ": expected `fixture <path> <size> <fnv64-hex>`";
        return false;
      }
      Baseline::FixtureEntry entry;
      entry.size = size;
      entry.hash = std::stoull(hash_hex, nullptr, 16);
      out->fixtures[path] = entry;
    } else {
      *error = "baseline line " + std::to_string(line_number) +
               ": unknown record `" + kind + "`";
      return false;
    }
  }
  return true;
}

inline std::vector<Violation> CheckPersistBaseline(
    const std::filesystem::path& root, const std::filesystem::path& baseline_path) {
  std::vector<Violation> violations;
  std::string baseline_text;
  if (!ReadFileToString(baseline_path, &baseline_text)) {
    return {{baseline_path.string(), 0, "lint-io",
             "cannot read baseline manifest (regenerate with "
             "lint_invariants --write-baseline)"}};
  }
  Baseline baseline;
  std::string error;
  if (!ParseBaseline(baseline_text, &baseline, &error)) {
    return {{baseline_path.string(), 0, "lint-io", error}};
  }

  const std::filesystem::path persist_cc =
      root / "src" / "persist" / "persist.cc";
  std::string persist_source;
  if (!ReadFileToString(persist_cc, &persist_source)) {
    violations.push_back(
        {persist_cc.string(), 0, "lint-io", "cannot read persist source"});
  } else {
    const std::map<std::string, uint32_t> current =
        ParseVersionConstants(persist_source);
    for (const auto& [name, floor] : baseline.version_floors) {
      auto it = current.find(name);
      if (it == current.end()) {
        violations.push_back(
            {"src/persist/persist.cc", 0, "persist-version",
             name + " disappeared — removing a format-version constant "
                    "breaks on-disk compatibility"});
      } else if (it->second < floor) {
        std::ostringstream msg;
        msg << name << " regressed to " << it->second << " (baseline floor "
            << floor << ") — format versions only ever increase";
        violations.push_back(
            {"src/persist/persist.cc", 0, "persist-version", msg.str()});
      }
    }
  }

  for (const auto& [rel_path, entry] : baseline.fixtures) {
    const std::filesystem::path path = root / rel_path;
    std::string bytes;
    if (!ReadFileToString(path, &bytes)) {
      violations.push_back({rel_path, 0, "frozen-fixture",
                            "frozen fixture missing — cross-version load "
                            "compatibility can no longer be proven"});
      continue;
    }
    if (bytes.size() != entry.size || Fnv1a64(bytes) != entry.hash) {
      violations.push_back(
          {rel_path, 0, "frozen-fixture",
           "frozen fixture bytes changed — old-version fixtures are "
           "immutable (add a NEW fixture for a new format version instead)"});
    }
  }
  return violations;
}

// Regenerates the manifest from the tree's current state.
inline std::string GenerateBaseline(const std::filesystem::path& root) {
  std::ostringstream out;
  out << "# lint_invariants baseline manifest. Regenerate with\n"
         "#   lint_invariants --root=. --write-baseline\n"
         "# and review the diff: version floors may only go up, and frozen\n"
         "# fixture lines should only ever be ADDED (a changed hash on an\n"
         "# existing fixture means history was rewritten).\n";
  const std::filesystem::path persist_cc =
      root / "src" / "persist" / "persist.cc";
  std::string persist_source;
  if (ReadFileToString(persist_cc, &persist_source)) {
    for (const auto& [name, value] : ParseVersionConstants(persist_source)) {
      out << "version " << name << " " << value << "\n";
    }
  }
  const std::filesystem::path testdata =
      root / "tests" / "persist" / "testdata";
  std::vector<std::filesystem::path> files;
  std::error_code ec;
  for (const auto& it : std::filesystem::directory_iterator(testdata, ec)) {
    if (it.is_regular_file()) files.push_back(it.path());
  }
  std::sort(files.begin(), files.end());
  for (const auto& path : files) {
    std::string bytes;
    if (!ReadFileToString(path, &bytes)) continue;
    char hash_hex[17];
    std::snprintf(hash_hex, sizeof(hash_hex), "%016llx",
                  static_cast<unsigned long long>(Fnv1a64(bytes)));
    out << "fixture tests/persist/testdata/" << path.filename().string()
        << " " << bytes.size() << " " << hash_hex << "\n";
  }
  return out.str();
}

// ---------------------------------------------------------------------------
// Check 3: concurrency primitives confined to src/serve + src/util
// ---------------------------------------------------------------------------

inline bool IsIdentifierChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Scans one file's source for naked std concurrency primitives.
inline std::vector<Violation> CheckConcurrencySource(const std::string& source,
                                                     const std::string& file) {
  static const char* kBanned[] = {
      "std::mutex",         "std::recursive_mutex", "std::shared_mutex",
      "std::timed_mutex",   "std::condition_variable",
      "std::condition_variable_any", "std::thread", "std::jthread",
  };
  std::vector<Violation> violations;
  const std::string code = StripCommentsAndStrings(source);
  for (const char* banned : kBanned) {
    const std::string needle(banned);
    std::size_t pos = 0;
    while ((pos = code.find(needle, pos)) != std::string::npos) {
      const std::size_t end = pos + needle.size();
      // Word boundary: reject std::thread matching std::thread_local etc.,
      // and member access like std::thread::hardware_concurrency (the type
      // use is what we ban; a qualifier use still names the type, flag it).
      if (end < code.size() && IsIdentifierChar(code[end])) {
        pos = end;
        continue;
      }
      violations.push_back(
          {file, LineOfOffset(code, pos), "naked-concurrency",
           needle + " outside src/serve + src/util — use the annotated "
                    "util::Mutex / util::CondVar wrappers "
                    "(util/thread_annotations.h) or serve::Executor so "
                    "thread-safety analysis can see the locks"});
      pos = end;
    }
  }
  return violations;
}

inline bool PathHasPrefix(const std::filesystem::path& path,
                          const std::filesystem::path& prefix) {
  auto it = prefix.begin();
  auto pit = path.begin();
  for (; it != prefix.end(); ++it, ++pit) {
    if (pit == path.end() || *pit != *it) return false;
  }
  return true;
}

inline std::vector<Violation> CheckConcurrencyPrimitives(
    const std::filesystem::path& root) {
  std::vector<Violation> violations;
  const std::filesystem::path src = root / "src";
  std::error_code ec;
  std::vector<std::filesystem::path> files;
  for (std::filesystem::recursive_directory_iterator it(src, ec), end;
       it != end && !ec; it.increment(ec)) {
    if (!it->is_regular_file()) continue;
    const std::string ext = it->path().extension().string();
    if (ext != ".h" && ext != ".cc") continue;
    files.push_back(it->path());
  }
  std::sort(files.begin(), files.end());
  for (const auto& path : files) {
    const std::filesystem::path rel =
        std::filesystem::relative(path, root, ec);
    if (PathHasPrefix(rel, std::filesystem::path("src") / "serve") ||
        PathHasPrefix(rel, std::filesystem::path("src") / "util")) {
      continue;
    }
    std::string source;
    if (!ReadFileToString(path, &source)) {
      violations.push_back({rel.string(), 0, "lint-io", "cannot read file"});
      continue;
    }
    for (Violation v : CheckConcurrencySource(source, rel.generic_string())) {
      violations.push_back(std::move(v));
    }
  }
  return violations;
}

// ---------------------------------------------------------------------------
// Check 4: Status-only load path (no CHECK aborts on untrusted input)
// ---------------------------------------------------------------------------

inline std::vector<Violation> CheckLoadPathSource(const std::string& source,
                                                  const std::string& file) {
  std::vector<Violation> violations;
  // Scan the raw source line by line so the `lint: allow-check` opt-out
  // (which lives in a comment) stays visible.
  std::istringstream in(source);
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const std::string stripped = StripCommentsAndStrings(line);
    static const char* kBannedMacros[] = {"RESINFER_CHECK", "RESINFER_DCHECK"};
    for (const char* macro : kBannedMacros) {
      const std::size_t pos = stripped.find(macro);
      if (pos == std::string::npos) continue;
      if (line.find("lint: allow-check") != std::string::npos) continue;
      violations.push_back(
          {file, line_number, "check-on-load-path",
           std::string(macro) + " on the load path — untrusted bytes must "
                                "fail with a recoverable util::Status, never "
                                "an abort (docs/persistence.md). For a true "
                                "internal invariant, annotate the line with "
                                "`// lint: allow-check <why>`"});
      break;  // one report per line
    }
  }
  return violations;
}

inline std::vector<Violation> CheckLoadPath(const std::filesystem::path& root) {
  std::vector<Violation> violations;
  std::vector<std::filesystem::path> load_path_files;
  std::error_code ec;
  const std::filesystem::path persist_dir = root / "src" / "persist";
  for (const auto& it : std::filesystem::directory_iterator(persist_dir, ec)) {
    if (it.is_regular_file()) load_path_files.push_back(it.path());
  }
  load_path_files.push_back(root / "src" / "data" / "vec_io.cc");
  load_path_files.push_back(root / "src" / "data" / "vec_io.h");
  std::sort(load_path_files.begin(), load_path_files.end());
  for (const auto& path : load_path_files) {
    std::string source;
    if (!ReadFileToString(path, &source)) continue;  // optional members
    const std::filesystem::path rel =
        std::filesystem::relative(path, root, ec);
    for (Violation v : CheckLoadPathSource(source, rel.generic_string())) {
      violations.push_back(std::move(v));
    }
  }
  return violations;
}

// ---------------------------------------------------------------------------
// Entry point
// ---------------------------------------------------------------------------

inline std::vector<Violation> RunAllChecks(
    const std::filesystem::path& root,
    const std::filesystem::path& baseline_path) {
  std::vector<Violation> violations;
  for (auto&& batch :
       {CheckKernelTable(root), CheckPersistBaseline(root, baseline_path),
        CheckConcurrencyPrimitives(root), CheckLoadPath(root)}) {
    for (const Violation& v : batch) violations.push_back(v);
  }
  return violations;
}

}  // namespace resinfer::lint

#endif  // RESINFER_TOOLS_LINT_INVARIANTS_LIB_H_

// resinfer_build — trains indexes and DDC artifacts and persists them.
//
// Reads the base (and, for the learned methods, training queries) from
// fvecs files, builds the requested index and distance-computation
// artifacts through MethodFactory — the same shared-artifact path the
// benches use — and writes everything into --out-dir with the magic-headed
// binary formats of persist/persist.h:
//
//   hnsw.bin / ivf.bin        the index (per --index)
//   pca.bin, pca_base.bin     PCA rotation + rotated base (ddc-res/ddc-pca)
//   ads_rotation.bin,
//   ads_base.bin              ADSampling random rotation + rotated base
//   ddc_pca.bin, ddc_opq.bin  trained classifier artifacts
//   MANIFEST.txt              what was built, with wall-clock timings
//
// resinfer_search consumes the directory; see that tool for the serving
// side.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/method_advisor.h"
#include "core/method_factory.h"
#include "data/dataset.h"
#include "data/vec_io.h"
#include "index/hnsw_index.h"
#include "index/ivf_index.h"
#include "persist/persist.h"
#include "tool_flags.h"
#include "util/status.h"
#include "util/timer.h"

namespace {

using resinfer::core::MethodFactory;

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage: resinfer_build --base base.fvecs --out-dir DIR [options]\n"
      "  --train FILE          train queries fvecs (required for learned "
      "methods)\n"
      "  --index hnsw|ivf|both|none (default hnsw)\n"
      "  --methods LIST        comma list of: adsampling,ddc-res,ddc-pca,"
      "ddc-opq (default all)\n"
      "  --M N                 HNSW connectivity (default 16)\n"
      "  --ef-construction N   HNSW build beam (default 200)\n"
      "  --clusters N          IVF cluster target (default 4096, capped)\n");
}

bool NeedsTraining(const std::vector<std::string>& methods) {
  for (const std::string& m : methods) {
    if (m == "ddc-pca" || m == "ddc-opq") return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  resinfer::tools::ArgParser args(argc, argv);

  const std::string base_path = args.GetString("base");
  const std::string train_path = args.GetString("train");
  const std::string out_dir = args.GetString("out-dir");
  const std::string index_kind = args.GetString("index", "hnsw");
  std::vector<std::string> methods = resinfer::tools::SplitCommaList(
      args.GetString("methods", "adsampling,ddc-res,ddc-pca,ddc-opq"));
  const int hnsw_m = static_cast<int>(args.GetInt("M", 16));
  const int ef_construction =
      static_cast<int>(args.GetInt("ef-construction", 200));
  const int clusters = static_cast<int>(args.GetInt("clusters", 4096));

  if (base_path.empty()) args.Fail("--base is required");
  if (out_dir.empty()) args.Fail("--out-dir is required");
  if (index_kind != "hnsw" && index_kind != "ivf" && index_kind != "both" &&
      index_kind != "none") {
    args.Fail("--index must be hnsw, ivf, both or none");
  }
  for (const std::string& m : methods) {
    if (m != "adsampling" && m != "ddc-res" && m != "ddc-pca" &&
        m != "ddc-opq") {
      args.Fail("unknown method '" + m + "' in --methods");
    }
  }
  if (!args.Validate()) {
    PrintUsage();
    return 1;
  }

  resinfer::data::Dataset ds;
  ds.name = "cli";
  // Non-finite base vectors are dropped (with a counted warning) rather
  // than poisoning every downstream distance; note the drop shifts row ids
  // against any precomputed ground truth.
  resinfer::data::ReadStats base_stats;
  if (resinfer::util::Status s = resinfer::data::ReadFvecs(
          base_path, &ds.base, resinfer::data::NonFinitePolicy::kDrop,
          &base_stats);
      !s.ok()) {
    std::fprintf(stderr, "error reading base vectors: %s\n",
                 s.ToString().c_str());
    return 1;
  }
  if (base_stats.dropped_rows > 0) {
    std::fprintf(stderr,
                 "warning: dropped %lld base vector(s) with NaN/Inf "
                 "components (first at row %lld); row ids shift against any "
                 "precomputed ground truth\n",
                 static_cast<long long>(base_stats.dropped_rows),
                 static_cast<long long>(base_stats.first_bad_row));
  }
  if (!train_path.empty()) {
    if (resinfer::util::Status s =
            resinfer::data::ReadFvecs(train_path, &ds.train_queries);
        !s.ok()) {
      std::fprintf(stderr, "error reading train queries: %s\n",
                   s.ToString().c_str());
      return 1;
    }
    if (ds.train_queries.cols() != ds.base.cols()) {
      std::fprintf(stderr, "error: train dim %lld != base dim %lld\n",
                   static_cast<long long>(ds.train_queries.cols()),
                   static_cast<long long>(ds.base.cols()));
      return 1;
    }
  } else if (NeedsTraining(methods)) {
    std::fprintf(stderr,
                 "error: --train is required for ddc-pca / ddc-opq\n");
    return 1;
  }
  std::printf("base: %lld x %lld\n", static_cast<long long>(ds.size()),
              static_cast<long long>(ds.dim()));

  // Spectrum-based method advice (Exp-1's selection rule).
  resinfer::core::MethodAdvice advice = resinfer::core::AdviseMethod(
      resinfer::core::ProfileSpectrum(ds.base));
  std::printf("advisor: recommend %s — %s\n", advice.recommended.c_str(),
              advice.rationale.c_str());

  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  if (ec) {
    std::fprintf(stderr, "error: cannot create %s: %s\n", out_dir.c_str(),
                 ec.message().c_str());
    return 1;
  }
  std::ofstream manifest(out_dir + "/MANIFEST.txt");
  manifest << "base=" << base_path << "\nn=" << ds.size()
           << "\ndim=" << ds.dim()
           << "\nadvisor=" << advice.recommended
           << "\nexplained_variance_32=" << advice.explained_variance_32
           << "\n";

  resinfer::WallTimer timer;
  auto persist_or_die = [&](const resinfer::util::Status& status) {
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
      std::exit(1);
    }
  };

  // Indexes.
  if (index_kind == "hnsw" || index_kind == "both") {
    resinfer::index::HnswOptions options;
    options.M = hnsw_m;
    options.ef_construction = ef_construction;
    timer.Reset();
    resinfer::index::HnswIndex hnsw =
        resinfer::index::HnswIndex::Build(ds.base, options);
    const double seconds = timer.ElapsedSeconds();
    persist_or_die(
        resinfer::persist::SaveHnsw(out_dir + "/hnsw.bin", hnsw));
    std::printf("hnsw.bin built in %.2fs (M=%d efC=%d)\n", seconds, hnsw_m,
                ef_construction);
    manifest << "hnsw_seconds=" << seconds << "\n";
  }
  if (index_kind == "ivf" || index_kind == "both") {
    resinfer::index::IvfOptions options;
    options.num_clusters = clusters;
    timer.Reset();
    resinfer::index::IvfIndex ivf =
        resinfer::index::IvfIndex::Build(ds.base, options);
    const double seconds = timer.ElapsedSeconds();
    persist_or_die(
        resinfer::persist::SaveIvf(out_dir + "/ivf.bin", ivf));
    std::printf("ivf.bin built in %.2fs (%lld clusters)\n", seconds,
                static_cast<long long>(ivf.num_clusters()));
    manifest << "ivf_seconds=" << seconds << "\n";
  }

  // Distance-computation artifacts through the shared factory.
  MethodFactory factory(&ds);
  for (const std::string& method : methods) {
    timer.Reset();
    if (method == "adsampling") {
      persist_or_die(resinfer::persist::SaveMatrix(
          out_dir + "/ads_rotation.bin", factory.EnsureAdsRotation()));
      persist_or_die(resinfer::persist::SaveMatrix(
          out_dir + "/ads_base.bin", factory.EnsureAdsRotatedBase()));
    } else if (method == "ddc-res") {
      persist_or_die(resinfer::persist::SavePca(out_dir + "/pca.bin",
                                                factory.EnsurePca()));
      persist_or_die(resinfer::persist::SaveMatrix(
          out_dir + "/pca_base.bin", factory.EnsurePcaRotatedBase()));
    } else if (method == "ddc-pca") {
      persist_or_die(resinfer::persist::SavePca(out_dir + "/pca.bin",
                                                factory.EnsurePca()));
      persist_or_die(resinfer::persist::SaveMatrix(
          out_dir + "/pca_base.bin", factory.EnsurePcaRotatedBase()));
      persist_or_die(resinfer::persist::SaveDdcPcaArtifacts(
          out_dir + "/ddc_pca.bin", factory.EnsureDdcPcaArtifacts()));
    } else if (method == "ddc-opq") {
      persist_or_die(resinfer::persist::SaveDdcOpqArtifacts(
          out_dir + "/ddc_opq.bin", factory.EnsureDdcOpqArtifacts()));
    }
    const double seconds = timer.ElapsedSeconds();
    std::printf("%s artifacts in %.2fs\n", method.c_str(), seconds);
    manifest << method << "_seconds=" << seconds << "\n";
  }

  std::printf("done; artifacts in %s\n", out_dir.c_str());
  return 0;
}

// resinfer_gen — generates a synthetic benchmark dataset on disk.
//
// Writes the standard ANN-benchmark file layout into --out-dir:
//   base.fvecs         base vectors to index
//   queries.fvecs      evaluation queries
//   train.fvecs        training queries for the learned correctors
//   groundtruth.ivecs  exact top-K ids per evaluation query
//
// The dataset is one of the paper-proxy distributions (DESIGN.md §2) or a
// fully custom spectrum via the flags. Example:
//
//   resinfer_gen --out-dir /tmp/sift --proxy sift --n 50000
//   resinfer_build --base /tmp/sift/base.fvecs --train /tmp/sift/train.fvecs \
//       --out-dir /tmp/sift/index
//   resinfer_search --dir /tmp/sift/index --base /tmp/sift/base.fvecs \
//       --queries /tmp/sift/queries.fvecs --gt /tmp/sift/groundtruth.ivecs \
//       --method ddc-res
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "data/ground_truth.h"
#include "data/synthetic.h"
#include "data/vec_io.h"
#include "tool_flags.h"
#include "util/status.h"
#include "util/timer.h"

namespace {

using resinfer::data::Dataset;
using resinfer::data::SyntheticSpec;

void PrintUsage() {
  std::fprintf(stderr,
               "usage: resinfer_gen --out-dir DIR [options]\n"
               "  --proxy NAME   sift|gist|deep|msong|tiny|glove|word2vec|"
               "antface (default sift)\n"
               "  --n N          base vectors (default: proxy default)\n"
               "  --dim D        dimensionality (default: proxy default)\n"
               "  --queries Q    evaluation queries\n"
               "  --train T      training queries\n"
               "  --alpha A      spectrum skew override\n"
               "  --clusters C   mixture clusters override\n"
               "  --seed S       RNG seed\n"
               "  --gt-k K       ground-truth depth (default 100)\n");
}

SyntheticSpec SpecFor(const std::string& proxy, bool* ok) {
  *ok = true;
  if (proxy == "sift") return resinfer::data::SiftProxySpec();
  if (proxy == "gist") return resinfer::data::GistProxySpec();
  if (proxy == "deep") return resinfer::data::DeepProxySpec();
  if (proxy == "msong") return resinfer::data::MsongProxySpec();
  if (proxy == "tiny") return resinfer::data::TinyProxySpec();
  if (proxy == "glove") return resinfer::data::GloveProxySpec();
  if (proxy == "word2vec") return resinfer::data::Word2vecProxySpec();
  if (proxy == "antface") return resinfer::data::AntFaceProxySpec();
  *ok = false;
  return SyntheticSpec();
}

}  // namespace

int main(int argc, char** argv) {
  resinfer::tools::ArgParser args(argc, argv);

  const std::string out_dir = args.GetString("out-dir");
  const std::string proxy = args.GetString("proxy", "sift");
  bool proxy_ok = false;
  SyntheticSpec spec = SpecFor(proxy, &proxy_ok);
  if (!proxy_ok) args.Fail("unknown --proxy '" + proxy + "'");

  spec.num_base = args.GetInt("n", spec.num_base);
  spec.dim = args.GetInt("dim", spec.dim);
  spec.num_queries = args.GetInt("queries", spec.num_queries);
  spec.num_train_queries = args.GetInt("train", spec.num_train_queries);
  spec.spectrum_alpha = args.GetDouble("alpha", spec.spectrum_alpha);
  spec.num_clusters =
      static_cast<int>(args.GetInt("clusters", spec.num_clusters));
  spec.seed = static_cast<uint64_t>(args.GetInt("seed",
                                                static_cast<int64_t>(spec.seed)));
  const int gt_k = static_cast<int>(args.GetInt("gt-k", 100));

  if (out_dir.empty()) args.Fail("--out-dir is required");
  if (!args.Validate()) {
    PrintUsage();
    return 1;
  }

  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  if (ec) {
    std::fprintf(stderr, "error: cannot create %s: %s\n", out_dir.c_str(),
                 ec.message().c_str());
    return 1;
  }

  std::printf("generating %s proxy: n=%lld dim=%lld queries=%lld train=%lld "
              "alpha=%.2f seed=%llu\n",
              proxy.c_str(), static_cast<long long>(spec.num_base),
              static_cast<long long>(spec.dim),
              static_cast<long long>(spec.num_queries),
              static_cast<long long>(spec.num_train_queries),
              spec.spectrum_alpha,
              static_cast<unsigned long long>(spec.seed));

  resinfer::WallTimer timer;
  Dataset ds = resinfer::data::GenerateSynthetic(spec);
  std::printf("generated in %.2fs\n", timer.ElapsedSeconds());

  timer.Reset();
  std::vector<std::vector<int64_t>> truth =
      resinfer::data::BruteForceKnn(ds.base, ds.queries, gt_k);
  std::vector<std::vector<int32_t>> truth32;
  truth32.reserve(truth.size());
  for (const auto& row : truth) {
    truth32.emplace_back(row.begin(), row.end());
  }
  std::printf("ground truth (k=%d) in %.2fs\n", gt_k, timer.ElapsedSeconds());

  const std::string base_path = out_dir + "/base.fvecs";
  const std::string query_path = out_dir + "/queries.fvecs";
  const std::string train_path = out_dir + "/train.fvecs";
  const std::string gt_path = out_dir + "/groundtruth.ivecs";
  resinfer::util::Status status =
      resinfer::data::WriteFvecs(base_path, ds.base);
  if (status.ok()) status = resinfer::data::WriteFvecs(query_path, ds.queries);
  if (status.ok()) {
    status = resinfer::data::WriteFvecs(train_path, ds.train_queries);
  }
  if (status.ok()) status = resinfer::data::WriteIvecs(gt_path, truth32);
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s, %s, %s, %s\n", base_path.c_str(),
              query_path.c_str(), train_path.c_str(), gt_path.c_str());
  return 0;
}

// resinfer_inspect — prints what a persisted artifact file contains.
//
// Sniffs the 8-byte magic of each argument, loads it through the matching
// persist/ loader (so corruption is detected, not just labeled), and prints
// the key shape metadata. Unknown or damaged files are reported per file;
// the exit code is non-zero if any file failed.
//
// With --verify the files are instead walked section by section against
// their embedded CRC32C checksums (format v5+), reporting the first
// corrupt section without fully deserializing anything.
//
//   resinfer_inspect /tmp/sift/index/*.bin
//   resinfer_inspect --verify /tmp/sift/index/*.bin
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "persist/persist.h"
#include "util/status.h"

namespace {

// Adapts the Status-returning loaders to the per-file bool/printf flow.
bool StatusOk(const resinfer::util::Status& status, std::string* error) {
  if (status.ok()) return true;
  *error = status.ToString();
  return false;
}

using resinfer::persist::LoadDdcOpqArtifacts;
using resinfer::persist::LoadDdcPcaArtifacts;
using resinfer::persist::LoadHnsw;
using resinfer::persist::LoadIvf;
using resinfer::persist::LoadMatrix;
using resinfer::persist::LoadOpq;
using resinfer::persist::LoadPca;
using resinfer::persist::LoadPq;

// Section table for checksummed files (v5+): name, payload size, file
// offset, 64-byte alignment. For v6 ivf files also prints the hot/cold
// split: the code section is the hot tier (served resident or zero-copy
// from an mmap of this very file when aligned); the raw vectors are the
// cold tier and live in a separate matrix/fvecs file, touched only by the
// exact-rescore epilogue. Pre-checksum files have no section frames to
// walk, so nothing is printed for them.
void PrintSections(const std::string& path) {
  std::vector<resinfer::persist::SectionInfo> sections;
  std::string format;
  uint32_t version = 0;
  resinfer::util::Status status =
      resinfer::persist::ListSections(path, &sections, &format, &version);
  if (!status.ok()) return;
  int64_t total = 0;
  int64_t hot = 0;
  for (const auto& section : sections) {
    std::printf("  section %-10s %10lld bytes @ %-8lld%s\n",
                section.name.c_str(),
                static_cast<long long>(section.payload_bytes),
                static_cast<long long>(section.payload_offset),
                section.aligned ? " 64B-aligned" : "");
    total += section.payload_bytes;
    if (section.name == "codes") hot = section.payload_bytes;
  }
  if (format == "ivf index" && version >= 6) {
    // The v6 writer pads inside the codes section so the record payload
    // itself sits on a 64-byte file offset (the section frame before it
    // need not be aligned) — that is what makes the hot tier mmappable.
    std::printf(
        "  hot tier:  codes %lld bytes (%.1f%% of payload), record payload "
        "64B-aligned for zero-copy mmap\n"
        "  cold tier: raw vectors live outside this file (matrix/fvecs), "
        "paged in only by the exact-rescore epilogue\n",
        static_cast<long long>(hot),
        total > 0 ? 100.0 * static_cast<double>(hot) / total : 0.0);
  }
}

bool ReadMagic(const std::string& path, std::string* magic,
               std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *error = "cannot open file";
    return false;
  }
  char buffer[8];
  if (!in.read(buffer, sizeof(buffer))) {
    *error = "file shorter than a header";
    return false;
  }
  magic->assign(buffer, sizeof(buffer));
  return true;
}

bool InspectOne(const std::string& path) {
  std::string magic;
  std::string error;
  if (!ReadMagic(path, &magic, &error)) {
    std::printf("%s: ERROR %s\n", path.c_str(), error.c_str());
    return false;
  }

  if (magic == "RIMATRX1") {
    resinfer::linalg::Matrix m;
    if (!StatusOk(LoadMatrix(path, &m), &error)) {
      std::printf("%s: matrix (CORRUPT: %s)\n", path.c_str(), error.c_str());
      return false;
    }
    std::printf("%s: matrix %lld x %lld (%.1f MiB)\n", path.c_str(),
                static_cast<long long>(m.rows()),
                static_cast<long long>(m.cols()),
                static_cast<double>(m.size()) * sizeof(float) / (1 << 20));
    PrintSections(path);
    return true;
  }
  if (magic == "RIPCAMD1") {
    resinfer::linalg::PcaModel pca;
    if (!StatusOk(LoadPca(path, &pca), &error)) {
      std::printf("%s: pca model (CORRUPT: %s)\n", path.c_str(),
                  error.c_str());
      return false;
    }
    double top32 = 0.0;
    double total = 0.0;
    for (std::size_t i = 0; i < pca.variances().size(); ++i) {
      total += pca.variances()[i];
      if (i < 32) top32 += pca.variances()[i];
    }
    std::printf("%s: pca model dim=%lld top32_variance=%.2f%%\n",
                path.c_str(), static_cast<long long>(pca.dim()),
                total > 0.0 ? 100.0 * top32 / total : 0.0);
    return true;
  }
  if (magic == "RIPQCBK1") {
    resinfer::quant::PqCodebook pq;
    if (!StatusOk(LoadPq(path, &pq), &error)) {
      std::printf("%s: pq codebook (CORRUPT: %s)\n", path.c_str(),
                  error.c_str());
      return false;
    }
    std::printf("%s: pq codebook dim=%lld m=%d ksub=%d\n", path.c_str(),
                static_cast<long long>(pq.dim()), pq.num_subspaces(),
                pq.num_centroids());
    return true;
  }
  if (magic == "RIOPQMD1") {
    resinfer::quant::OpqModel opq;
    if (!StatusOk(LoadOpq(path, &opq), &error)) {
      std::printf("%s: opq model (CORRUPT: %s)\n", path.c_str(),
                  error.c_str());
      return false;
    }
    std::printf("%s: opq model dim=%lld m=%d ksub=%d\n", path.c_str(),
                static_cast<long long>(opq.dim()),
                opq.codebook().num_subspaces(),
                opq.codebook().num_centroids());
    return true;
  }
  if (magic == "RIHNSWG1") {
    resinfer::index::HnswIndex hnsw;
    if (!StatusOk(LoadHnsw(path, &hnsw), &error)) {
      std::printf("%s: hnsw graph (CORRUPT: %s)\n", path.c_str(),
                  error.c_str());
      return false;
    }
    std::printf("%s: hnsw graph n=%lld levels=%d (%.1f MiB)\n", path.c_str(),
                static_cast<long long>(hnsw.size()), hnsw.max_level() + 1,
                static_cast<double>(hnsw.GraphBytes()) / (1 << 20));
    return true;
  }
  if (magic == "RIIVFIX1") {
    resinfer::index::IvfIndex ivf;
    if (!StatusOk(LoadIvf(path, &ivf), &error)) {
      std::printf("%s: ivf index (CORRUPT: %s)\n", path.c_str(),
                  error.c_str());
      return false;
    }
    if (ivf.has_codes()) {
      std::printf("%s: ivf index n=%lld clusters=%lld codes=%s\n",
                  path.c_str(), static_cast<long long>(ivf.size()),
                  static_cast<long long>(ivf.num_clusters()),
                  ivf.codes().tag().c_str());
    } else {
      std::printf("%s: ivf index n=%lld clusters=%lld\n", path.c_str(),
                  static_cast<long long>(ivf.size()),
                  static_cast<long long>(ivf.num_clusters()));
    }
    PrintSections(path);
    return true;
  }
  if (magic == "RIDPCAA1") {
    resinfer::core::DdcPcaArtifacts a;
    if (!StatusOk(LoadDdcPcaArtifacts(path, &a), &error)) {
      std::printf("%s: ddc-pca artifacts (CORRUPT: %s)\n", path.c_str(),
                  error.c_str());
      return false;
    }
    std::printf("%s: ddc-pca artifacts stages=%zu dims=[", path.c_str(),
                a.stage_dims.size());
    for (std::size_t i = 0; i < a.stage_dims.size(); ++i) {
      std::printf("%s%lld", i ? "," : "",
                  static_cast<long long>(a.stage_dims[i]));
    }
    std::printf("]\n");
    return true;
  }
  if (magic == "RIDOPQA1") {
    resinfer::core::DdcOpqArtifacts a;
    if (!StatusOk(LoadDdcOpqArtifacts(path, &a), &error)) {
      std::printf("%s: ddc-opq artifacts (CORRUPT: %s)\n", path.c_str(),
                  error.c_str());
      return false;
    }
    std::printf("%s: ddc-opq artifacts n=%zu code_size=%lld extra=%.1f MiB\n",
                path.c_str(), a.recon_errors.size(),
                static_cast<long long>(a.opq.codebook().code_size()),
                static_cast<double>(a.ExtraBytes()) / (1 << 20));
    return true;
  }
  if (magic == "RIRQCBK1") {
    resinfer::quant::RqCodebook rq;
    if (!StatusOk(resinfer::persist::LoadRq(path, &rq), &error)) {
      std::printf("%s: rq codebook (CORRUPT: %s)\n", path.c_str(),
                  error.c_str());
      return false;
    }
    std::printf("%s: rq codebook dim=%lld stages=%d ksub=%d\n", path.c_str(),
                static_cast<long long>(rq.dim()), rq.num_stages(),
                rq.num_centroids());
    return true;
  }
  if (magic == "RISQCBK1") {
    resinfer::quant::SqCodebook sq;
    if (!StatusOk(resinfer::persist::LoadSq(path, &sq), &error)) {
      std::printf("%s: sq codebook (CORRUPT: %s)\n", path.c_str(),
                  error.c_str());
      return false;
    }
    std::printf("%s: sq8 codebook dim=%lld\n", path.c_str(),
                static_cast<long long>(sq.dim()));
    return true;
  }
  if (magic == "RILINCR1") {
    resinfer::core::LinearCorrector corrector;
    if (!StatusOk(resinfer::persist::LoadCorrector(path, &corrector), &error)) {
      std::printf("%s: linear corrector (CORRUPT: %s)\n", path.c_str(),
                  error.c_str());
      return false;
    }
    std::printf(
        "%s: linear corrector trained=%d w=(%.4g, %.4g, %.4g) bias=%.4g\n",
        path.c_str(), corrector.trained() ? 1 : 0, corrector.w_approx(),
        corrector.w_tau(), corrector.w_extra(), corrector.bias());
    return true;
  }
  if (magic == "RIDRQCA1") {
    resinfer::core::DdcRqCascadeArtifacts a;
    if (!StatusOk(resinfer::persist::LoadDdcRqCascadeArtifacts(path, &a), &error)) {
      std::printf("%s: ddc-rq-cascade artifacts (CORRUPT: %s)\n",
                  path.c_str(), error.c_str());
      return false;
    }
    std::printf("%s: ddc-rq-cascade artifacts stages=%d levels=[",
                path.c_str(), a.rq.num_stages());
    for (std::size_t l = 0; l < a.levels.size(); ++l) {
      std::printf("%s%d", l ? "," : "", a.levels[l]);
    }
    std::printf("] extra=%.1f MiB\n",
                static_cast<double>(a.ExtraBytes()) / (1 << 20));
    return true;
  }
  std::printf("%s: unknown magic '%s'\n", path.c_str(), magic.c_str());
  return false;
}

// Checksum-walks one file (persist::VerifyFile); prints PASS or the first
// failure. Never deserializes payloads, so it is safe on huge artifacts.
bool VerifyOne(const std::string& path) {
  std::string format;
  resinfer::util::Status status = resinfer::persist::VerifyFile(path, &format);
  if (status.ok()) {
    std::printf("%s: OK (%s, all section checksums match)\n", path.c_str(),
                format.empty() ? "unknown" : format.c_str());
    return true;
  }
  std::printf("%s: FAIL %s\n", path.c_str(), status.ToString().c_str());
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  bool verify = false;
  int first_file = 1;
  if (argc > 1 && std::strcmp(argv[1], "--verify") == 0) {
    verify = true;
    first_file = 2;
  }
  if (argc <= first_file) {
    std::fprintf(stderr, "usage: resinfer_inspect [--verify] FILE...\n");
    return 1;
  }
  bool all_ok = true;
  for (int i = first_file; i < argc; ++i) {
    all_ok = (verify ? VerifyOne(argv[i]) : InspectOne(argv[i])) && all_ok;
  }
  return all_ok ? 0 : 1;
}

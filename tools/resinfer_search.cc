// resinfer_search — serves queries from artifacts persisted by
// resinfer_build and reports quality + performance.
//
// Loads the base vectors, the requested index, and the method's artifacts
// from --dir, runs the query file through the multi-threaded batch runner,
// and prints QPS, latency percentiles, pruning statistics and (when a
// ground-truth ivecs is supplied) recall@k.
//
//   resinfer_search --dir /tmp/sift/index --base /tmp/sift/base.fvecs \
//       --queries /tmp/sift/queries.fvecs --gt /tmp/sift/groundtruth.ivecs \
//       --index hnsw --method ddc-res --k 10 --ef 100
#include <cstdio>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/ad_sampling.h"
#include "core/ddc_opq.h"
#include "core/ddc_pca.h"
#include "core/ddc_res.h"
#include "data/metrics.h"
#include "data/vec_io.h"
#include "index/batch.h"
#include "persist/persist.h"
#include "serve/admission.h"
#include "storage/storage.h"
#include "tool_flags.h"
#include "util/status.h"
#include "util/timer.h"

namespace {

using resinfer::index::BatchOptions;
using resinfer::index::BatchResult;
using resinfer::index::ComputerFactory;
using resinfer::linalg::Matrix;

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage: resinfer_search --dir DIR --base base.fvecs --queries Q.fvecs "
      "[options]\n"
      "  --method NAME   exact|adsampling|ddc-res|ddc-pca|ddc-opq "
      "(default ddc-res)\n"
      "  --index KIND    hnsw|ivf|flat (default hnsw)\n"
      "  --gt FILE       ground-truth ivecs for recall\n"
      "  --k N           neighbors (default 10)\n"
      "  --ef N          HNSW beam (default 100)\n"
      "  --nprobe N      IVF probes (default 10)\n"
      "  --threads N     worker threads (default: hardware)\n"
      "  --serve         route queries one at a time through the\n"
      "                  coalescing admission queue (IVF only) instead of\n"
      "                  the pre-materialized batch runner\n"
      "  --linger-us N   serve mode: group linger budget (default 200)\n"
      "  --group N       serve mode: max queries per coalesced group\n"
      "                  (default 32, capped at the grouped-scan width)\n"
      "  --storage KIND  memory|mmap: how the IVF code section is served\n"
      "                  (default: RESINFER_STORAGE env, else memory;\n"
      "                  mmap needs a v6 ivf.bin)\n");
}

// Everything a method needs at serving time, loaded once and shared by all
// worker computers.
struct ServingArtifacts {
  Matrix base;
  std::optional<resinfer::linalg::PcaModel> pca;
  std::optional<Matrix> pca_base;
  std::optional<Matrix> ads_rotation;
  std::optional<Matrix> ads_base;
  std::optional<resinfer::core::DdcPcaArtifacts> ddc_pca;
  std::optional<resinfer::core::DdcOpqArtifacts> ddc_opq;
};

resinfer::util::Status LoadFor(const std::string& method,
                               const std::string& dir,
                               ServingArtifacts* artifacts) {
  namespace persist = resinfer::persist;
  using resinfer::util::Status;
  if (method == "exact") return Status::Ok();
  if (method == "adsampling") {
    artifacts->ads_rotation.emplace();
    artifacts->ads_base.emplace();
    RESINFER_RETURN_IF_ERROR(persist::LoadMatrix(
        dir + "/ads_rotation.bin", &*artifacts->ads_rotation));
    return persist::LoadMatrix(dir + "/ads_base.bin",
                               &*artifacts->ads_base);
  }
  if (method == "ddc-res" || method == "ddc-pca") {
    artifacts->pca.emplace();
    artifacts->pca_base.emplace();
    RESINFER_RETURN_IF_ERROR(
        persist::LoadPca(dir + "/pca.bin", &*artifacts->pca));
    RESINFER_RETURN_IF_ERROR(persist::LoadMatrix(dir + "/pca_base.bin",
                                                 &*artifacts->pca_base));
    if (method == "ddc-pca") {
      artifacts->ddc_pca.emplace();
      return persist::LoadDdcPcaArtifacts(dir + "/ddc_pca.bin",
                                          &*artifacts->ddc_pca);
    }
    return Status::Ok();
  }
  if (method == "ddc-opq") {
    artifacts->ddc_opq.emplace();
    return persist::LoadDdcOpqArtifacts(dir + "/ddc_opq.bin",
                                        &*artifacts->ddc_opq);
  }
  return Status::InvalidArgument("unknown method " + method);
}

ComputerFactory FactoryFor(const std::string& method,
                           const ServingArtifacts& artifacts) {
  namespace core = resinfer::core;
  if (method == "exact") {
    return [&artifacts] {
      return std::make_unique<resinfer::index::FlatDistanceComputer>(
          artifacts.base.data(), artifacts.base.rows(),
          artifacts.base.cols());
    };
  }
  if (method == "adsampling") {
    return [&artifacts] {
      return std::make_unique<core::AdSamplingComputer>(
          &*artifacts.ads_rotation, &*artifacts.ads_base);
    };
  }
  if (method == "ddc-res") {
    return [&artifacts] {
      return std::make_unique<core::DdcResComputer>(&*artifacts.pca,
                                                    &*artifacts.pca_base);
    };
  }
  if (method == "ddc-pca") {
    return [&artifacts] {
      return std::make_unique<core::DdcPcaComputer>(
          &*artifacts.pca, &*artifacts.pca_base, &*artifacts.ddc_pca);
    };
  }
  // ddc-opq (validated earlier).
  return [&artifacts] {
    return std::make_unique<core::DdcOpqComputer>(&artifacts.base,
                                                  &*artifacts.ddc_opq);
  };
}

}  // namespace

int main(int argc, char** argv) {
  resinfer::tools::ArgParser args(argc, argv);

  const std::string dir = args.GetString("dir");
  const std::string base_path = args.GetString("base");
  const std::string query_path = args.GetString("queries");
  const std::string gt_path = args.GetString("gt");
  const std::string method = args.GetString("method", "ddc-res");
  const std::string index_kind = args.GetString("index", "hnsw");
  const int k = static_cast<int>(args.GetInt("k", 10));
  const int ef = static_cast<int>(args.GetInt("ef", 100));
  const int nprobe = static_cast<int>(args.GetInt("nprobe", 10));
  BatchOptions batch_options;
  batch_options.num_threads = static_cast<int>(args.GetInt("threads", 0));
  const bool serve = args.GetBool("serve", false);
  const int64_t linger_us = args.GetInt("linger-us", 200);
  const int serve_group = static_cast<int>(args.GetInt("group", 32));
  // --storage overrides the RESINFER_STORAGE env default. mmap serves the
  // v6 code section zero-copy from the index file; results are
  // bit-identical to the memory backend either way.
  const std::string storage_flag = args.GetString("storage", "");
  resinfer::persist::IvfLoadOptions load_options;
  if (!storage_flag.empty() &&
      !resinfer::storage::ParseStorageBackend(storage_flag,
                                              &load_options.backend)
           .ok()) {
    args.Fail("--storage must be 'memory' or 'mmap'");
  }

  if (dir.empty() && method != "exact") args.Fail("--dir is required");
  if (serve && index_kind != "ivf") args.Fail("--serve requires --index ivf");
  if (base_path.empty()) args.Fail("--base is required");
  if (query_path.empty()) args.Fail("--queries is required");
  if (index_kind != "hnsw" && index_kind != "ivf" && index_kind != "flat") {
    args.Fail("--index must be hnsw, ivf or flat");
  }
  if (!args.Validate()) {
    PrintUsage();
    return 1;
  }

  ServingArtifacts artifacts;
  if (resinfer::util::Status s =
          resinfer::data::ReadFvecs(base_path, &artifacts.base);
      !s.ok()) {
    std::fprintf(stderr, "error reading base vectors: %s\n",
                 s.ToString().c_str());
    return 1;
  }
  Matrix queries;
  if (resinfer::util::Status s =
          resinfer::data::ReadFvecs(query_path, &queries);
      !s.ok()) {
    std::fprintf(stderr, "error reading queries: %s\n", s.ToString().c_str());
    return 1;
  }
  if (queries.cols() != artifacts.base.cols()) {
    std::fprintf(stderr, "error: query dim %lld != base dim %lld\n",
                 static_cast<long long>(queries.cols()),
                 static_cast<long long>(artifacts.base.cols()));
    return 1;
  }
  if (resinfer::util::Status s = LoadFor(method, dir, &artifacts); !s.ok()) {
    std::fprintf(stderr, "error loading artifacts: %s\n",
                 s.ToString().c_str());
    return 1;
  }

  ComputerFactory factory = FactoryFor(method, artifacts);
  BatchResult batch;
  std::optional<resinfer::serve::ServingStats> serving_stats;
  if (index_kind == "flat") {
    resinfer::index::FlatIndex flat(artifacts.base);
    batch = BatchSearchFlat(flat, factory, queries, k, batch_options);
  } else if (index_kind == "ivf") {
    resinfer::index::IvfIndex ivf;
    if (resinfer::util::Status s =
            resinfer::persist::LoadIvf(dir + "/ivf.bin", &ivf, load_options);
        !s.ok()) {
      std::fprintf(stderr, "error loading ivf.bin: %s\n",
                   s.ToString().c_str());
      return 1;
    }
    if (serve) {
      // The online path: one Submit per query, coalesced by traffic. The
      // answers are bit-identical to the batch runner's; only scheduling
      // differs (see src/serve/admission.h and docs/serving.md).
      resinfer::serve::AdmissionOptions serve_options;
      serve_options.num_threads = batch_options.num_threads;
      serve_options.max_group_size = serve_group;
      serve_options.linger_micros = linger_us;
      resinfer::serve::IvfServer server(&ivf, factory, serve_options);
      std::vector<std::future<std::vector<resinfer::index::Neighbor>>>
          futures;
      futures.reserve(static_cast<std::size_t>(queries.rows()));
      resinfer::WallTimer timer;
      for (int64_t q = 0; q < queries.rows(); ++q) {
        futures.push_back(server.Submit(queries.Row(q), k, nprobe));
      }
      batch.results.reserve(futures.size());
      for (auto& future : futures) batch.results.push_back(future.get());
      batch.wall_seconds = timer.ElapsedSeconds();
      server.Shutdown();
      serving_stats = server.stats();
      batch.stats = serving_stats->computer_stats;
      batch.latency_seconds = serving_stats->latency_seconds;
      batch.worker_busy_seconds = server.executor_stats().busy_seconds;
    } else {
      batch = BatchSearchIvf(ivf, factory, queries, k, nprobe, batch_options);
    }
  } else {
    resinfer::index::HnswIndex hnsw;
    if (resinfer::util::Status s =
            resinfer::persist::LoadHnsw(dir + "/hnsw.bin", &hnsw);
        !s.ok()) {
      std::fprintf(stderr, "error loading hnsw.bin: %s\n",
                   s.ToString().c_str());
      return 1;
    }
    batch = BatchSearchHnsw(hnsw, factory, queries, k, ef, batch_options);
  }

  std::printf("method=%s index=%s k=%d queries=%lld\n", method.c_str(),
              index_kind.c_str(), k,
              static_cast<long long>(queries.rows()));
  std::printf("qps=%.1f wall=%.3fs util_avg=%.3f util_min=%.3f\n",
              batch.Qps(), batch.wall_seconds, batch.AvgUtilization(),
              batch.MinUtilization());
  std::printf("latency %s\n", batch.latency_seconds.Summary().c_str());
  if (serving_stats) {
    std::printf(
        "serve occupancy=%.2f groups=%lld flushes full=%lld linger=%lld "
        "drain=%lld\n",
        serving_stats->MeanOccupancy(),
        static_cast<long long>(serving_stats->groups),
        static_cast<long long>(serving_stats->full_flushes),
        static_cast<long long>(serving_stats->linger_flushes),
        static_cast<long long>(serving_stats->drain_flushes));
  }
  std::printf("candidates=%lld pruned_rate=%.3f scan_rate=%.3f\n",
              static_cast<long long>(batch.stats.candidates),
              batch.stats.PrunedRate(),
              batch.stats.ScanRate(artifacts.base.cols()));

  if (!gt_path.empty()) {
    std::vector<std::vector<int32_t>> truth32;
    if (resinfer::util::Status s = resinfer::data::ReadIvecs(gt_path, &truth32);
        !s.ok()) {
      std::fprintf(stderr, "error reading ground truth: %s\n",
                   s.ToString().c_str());
      return 1;
    }
    if (truth32.size() != static_cast<std::size_t>(queries.rows())) {
      std::fprintf(stderr, "error: ground truth has %zu rows, queries %lld\n",
                   truth32.size(), static_cast<long long>(queries.rows()));
      return 1;
    }
    std::vector<std::vector<int64_t>> truth;
    truth.reserve(truth32.size());
    for (const auto& row : truth32) truth.emplace_back(row.begin(), row.end());
    const double recall = resinfer::data::MeanRecallAtK(
        resinfer::index::ResultIds(batch), truth, k);
    std::printf("recall@%d=%.4f\n", k, recall);
  }
  return 0;
}

// Minimal --flag value / --flag=value parser shared by the CLI tools.
//
// Unknown flags are an error (typos should not silently fall back to
// defaults when the operator thinks they changed something). Values are
// validated on access; parse failures print to stderr and mark the parser
// failed so the tool can exit non-zero after reporting usage.
#ifndef RESINFER_TOOLS_TOOL_FLAGS_H_
#define RESINFER_TOOLS_TOOL_FLAGS_H_

#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace resinfer::tools {

class ArgParser {
 public:
  ArgParser(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        positional_.push_back(std::move(arg));
        continue;
      }
      arg = arg.substr(2);
      const std::size_t eq = arg.find('=');
      if (eq != std::string::npos) {
        flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
      } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        flags_[arg] = argv[++i];
      } else {
        flags_[arg] = "true";  // bare switch
      }
    }
  }

  bool Has(const std::string& name) {
    used_.insert(name);
    return flags_.count(name) > 0;
  }

  std::string GetString(const std::string& name,
                        const std::string& default_value = "") {
    used_.insert(name);
    auto it = flags_.find(name);
    return it != flags_.end() ? it->second : default_value;
  }

  int64_t GetInt(const std::string& name, int64_t default_value) {
    used_.insert(name);
    auto it = flags_.find(name);
    if (it == flags_.end()) return default_value;
    char* end = nullptr;
    const long long value = std::strtoll(it->second.c_str(), &end, 10);
    if (end == nullptr || *end != '\0') {
      Fail("flag --" + name + " expects an integer, got '" + it->second +
           "'");
      return default_value;
    }
    return value;
  }

  double GetDouble(const std::string& name, double default_value) {
    used_.insert(name);
    auto it = flags_.find(name);
    if (it == flags_.end()) return default_value;
    char* end = nullptr;
    const double value = std::strtod(it->second.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      Fail("flag --" + name + " expects a number, got '" + it->second + "'");
      return default_value;
    }
    return value;
  }

  bool GetBool(const std::string& name, bool default_value) {
    used_.insert(name);
    auto it = flags_.find(name);
    if (it == flags_.end()) return default_value;
    return it->second != "false" && it->second != "0";
  }

  const std::vector<std::string>& positional() const { return positional_; }

  void Fail(const std::string& message) {
    std::fprintf(stderr, "error: %s\n", message.c_str());
    failed_ = true;
  }

  // Call after all Get* calls: flags nobody asked about are typos.
  bool Validate() {
    for (const auto& [name, value] : flags_) {
      if (used_.count(name) == 0) {
        Fail("unknown flag --" + name);
      }
    }
    return !failed_;
  }

  bool failed() const { return failed_; }

 private:
  std::map<std::string, std::string> flags_;
  std::set<std::string> used_;
  std::vector<std::string> positional_;
  bool failed_ = false;
};

// Splits "a,b,c" into {"a","b","c"}; empty input gives an empty list.
inline std::vector<std::string> SplitCommaList(const std::string& list) {
  std::vector<std::string> out;
  std::size_t begin = 0;
  while (begin <= list.size() && !list.empty()) {
    const std::size_t comma = list.find(',', begin);
    if (comma == std::string::npos) {
      out.push_back(list.substr(begin));
      break;
    }
    out.push_back(list.substr(begin, comma - begin));
    begin = comma + 1;
  }
  return out;
}

}  // namespace resinfer::tools

#endif  // RESINFER_TOOLS_TOOL_FLAGS_H_
